"""Per-descriptive-schema-node statistics — the cost-model feed.

The §9.1 descriptive schema gives every document path exactly one
schema node, so the schema node is the natural granule of data
statistics: how many descriptors it holds, how many bytes they cost,
how many *distinct* §4 typed values appear under it and what the
value range is.  A cost-based planner prices candidate strategies
(blocks touched, postings probed, residual selectivity) from exactly
these numbers.

:class:`StatisticsCollector` maintains them **incrementally at
mutation time**: the engine calls :meth:`note_added` /
:meth:`note_removed` / :meth:`note_value_changed` from the same sites
that keep ``SchemaNode.descriptor_count`` and the secondary indexes
honest, so the statistics are always current — no analyze pass.  The
hooks are unconditional (statistics are engine state, not optional
instrumentation) and O(1) per mutation.

Sizing is a deterministic model, not process memory: a fixed
per-descriptor overhead plus the memoized label key length plus the
UTF-8 value length.  Deterministic bytes survive snapshot round-trips
bit-for-bit, which is what lets the checkpoint image persist the
digest and recovery verify it against a from-scratch
:meth:`recount`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.descriptor import NodeDescriptor
    from repro.storage.dschema import SchemaNode
    from repro.storage.engine import StorageEngine

#: Fixed modeled cost of one descriptor before its label and value:
#: the schema-node reference, four structure pointers and the
#: node-type tag of Example 10's layout.
DESCRIPTOR_OVERHEAD = 24

#: A schema node's statistics have *drifted* — and the statistics
#: epoch advances — once the mutations against it since its last
#: epoch stamp (descriptor count delta plus value rewrites) exceed
#: both this fraction of the stamped count and
#: :data:`STATS_DRIFT_MIN_MUTATIONS`.  The relative threshold keeps a
#: steady trickle of inserts from re-pricing every plan; the absolute
#: floor keeps tiny nodes from thrashing the epoch on every touch.
STATS_DRIFT_THRESHOLD = 0.3
STATS_DRIFT_MIN_MUTATIONS = 16


def descriptor_bytes(descriptor: "NodeDescriptor") -> int:
    """The deterministic modeled size of one descriptor."""
    size = DESCRIPTOR_OVERHEAD + len(descriptor.nid.sort_key())
    if descriptor.value is not None:
        size += len(descriptor.value.encode("utf-8"))
    return size


def _numeric_key(value: str) -> tuple:
    """A deterministic sort key for one numeric-parsing value: the
    parsed number first, the lexical form as tie-break (so ``"9"`` vs
    ``"0009"`` order never depends on dict insertion order).  ``nan``
    has no numeric position and sorts after every number."""
    number = float(value)
    if number != number:  # NaN
        return (1, 0.0, value)
    return (0, number, value)


def _typed_order(values) -> list:
    """Values sorted in the typed space: numerically when every value
    parses as a number (lexically distinct ``"9"``/``"0009"`` compare
    by value, ties broken lexicographically), lexicographically
    otherwise.  The order is a pure function of the value *set* —
    never of insertion order — because the persisted digest must equal
    a from-scratch recount that saw the same values in document order."""
    values = list(values)
    try:
        return sorted(values, key=_numeric_key)
    except ValueError:
        return sorted(values)


class NodeStats:
    """The running statistics of one schema node."""

    __slots__ = ("descriptors", "byte_size", "value_counts")

    def __init__(self) -> None:
        self.descriptors = 0
        self.byte_size = 0
        #: Multiset of the live values under this node (the multiset —
        #: not a set — so removals keep ``distinct`` exact).
        self.value_counts: Dict[str, int] = {}

    @property
    def distinct_values(self) -> int:
        return len(self.value_counts)

    def add_value(self, value: str) -> None:
        self.value_counts[value] = self.value_counts.get(value, 0) + 1

    def remove_value(self, value: str) -> None:
        count = self.value_counts.get(value, 0) - 1
        if count > 0:
            self.value_counts[value] = count
        elif value in self.value_counts:
            del self.value_counts[value]

    def value_range(self) -> "Optional[tuple[str, str]]":
        """The collected ``(min, max)`` value pair in the typed order,
        or None when the node carries no values — what the cost
        model's range check prices eq-probe keys against."""
        if not self.value_counts:
            return None
        ordered = _typed_order(self.value_counts)
        return (ordered[0], ordered[-1])

    def as_dict(self) -> dict:
        """The digest the snapshot image persists and EXPLAIN/cost
        models consume (no raw multiset — bounded size per node)."""
        ordered = _typed_order(self.value_counts) \
            if self.value_counts else []
        return {
            "descriptors": self.descriptors,
            "bytes": self.byte_size,
            "distinct_values": self.distinct_values,
            "min_value": ordered[0] if ordered else None,
            "max_value": ordered[-1] if ordered else None,
        }

    def __repr__(self) -> str:
        return (f"NodeStats({self.descriptors} descriptors, "
                f"{self.byte_size} bytes, "
                f"{self.distinct_values} distinct)")


class StatisticsCollector:
    """Schema-node-keyed statistics, maintained at mutation time.

    Beyond the per-node digests, the collector runs the **statistics
    epoch** — the freshness stamp the plan cache checks alongside the
    schema version and the index epoch.  :attr:`epoch` advances when
    any node's statistics drift past :data:`STATS_DRIFT_THRESHOLD`
    relative to the count stamped at its last drift; per node the
    collector remembers the epoch it last drifted at, so
    :meth:`drifted_since` can answer "did anything this plan priced
    move?" — the exactly-scoped invalidation question — in O(nodes
    consulted)."""

    def __init__(self) -> None:
        self._stats: Dict["SchemaNode", NodeStats] = {}
        #: Advances when any node's statistics drift past the
        #: threshold; cached plans stamp the epoch they priced under.
        self.epoch = 0
        # Per node: descriptor count at its last drift stamp, value
        # rewrites since, and the epoch it last drifted at.
        self._basis: Dict["SchemaNode", int] = {}
        self._churn: Dict["SchemaNode", int] = {}
        self._drifted_at: Dict["SchemaNode", int] = {}

    # -- the statistics epoch -------------------------------------------

    def _note_drift(self, schema_node: "SchemaNode",
                    descriptors: int) -> None:
        """O(1) drift check after one mutation against *schema_node*."""
        basis = self._basis.get(schema_node, 0)
        delta = descriptors - basis
        if delta < 0:
            delta = -delta
        drift = delta + self._churn.get(schema_node, 0)
        if drift >= STATS_DRIFT_MIN_MUTATIONS \
                and drift >= STATS_DRIFT_THRESHOLD * basis:
            self.epoch += 1
            self._basis[schema_node] = descriptors
            self._churn.pop(schema_node, None)
            self._drifted_at[schema_node] = self.epoch

    def drifted_since(self, schema_nodes, epoch: int) -> bool:
        """Did any of *schema_nodes* drift after *epoch*?  The plan
        cache asks this before deciding between a cheap in-place
        restamp and a re-price."""
        drifted_at = self._drifted_at
        return any(drifted_at.get(node, 0) > epoch
                   for node in schema_nodes)

    # -- mutation hooks (engine side) -----------------------------------

    def note_added(self, descriptor: "NodeDescriptor") -> None:
        stats = self._stats.get(descriptor.schema_node)
        if stats is None:
            stats = NodeStats()
            self._stats[descriptor.schema_node] = stats
        stats.descriptors += 1
        stats.byte_size += descriptor_bytes(descriptor)
        if descriptor.value is not None:
            stats.add_value(descriptor.value)
        self._note_drift(descriptor.schema_node, stats.descriptors)

    def note_removed(self, descriptor: "NodeDescriptor") -> None:
        stats = self._stats.get(descriptor.schema_node)
        if stats is None:  # pragma: no cover - hook misuse guard
            return
        stats.descriptors -= 1
        stats.byte_size -= descriptor_bytes(descriptor)
        if descriptor.value is not None:
            stats.remove_value(descriptor.value)
        remaining = stats.descriptors
        if remaining <= 0:
            del self._stats[descriptor.schema_node]
        self._note_drift(descriptor.schema_node, max(0, remaining))

    def note_value_changed(self, descriptor: "NodeDescriptor",
                           old_value: Optional[str]) -> None:
        """*descriptor* already carries the new value."""
        stats = self._stats.get(descriptor.schema_node)
        if stats is None:  # pragma: no cover - hook misuse guard
            return
        if old_value is not None:
            stats.byte_size -= len(old_value.encode("utf-8"))
            stats.remove_value(old_value)
        if descriptor.value is not None:
            stats.byte_size += len(descriptor.value.encode("utf-8"))
            stats.add_value(descriptor.value)
        # A rewrite shifts the value distribution (distinct, min/max)
        # without moving the descriptor count — count it toward drift.
        node = descriptor.schema_node
        self._churn[node] = self._churn.get(node, 0) + 1
        self._note_drift(node, stats.descriptors)

    # -- reading --------------------------------------------------------

    def stats_for(self, schema_node: "SchemaNode"
                  ) -> Optional[NodeStats]:
        return self._stats.get(schema_node)

    def total_descriptors(self) -> int:
        return sum(s.descriptors for s in self._stats.values())

    def total_bytes(self) -> int:
        return sum(s.byte_size for s in self._stats.values())

    def export(self) -> dict:
        """The full digest keyed by schema path, path-sorted — the
        snapshot payload and the ``repro stats``/CLI surface.  The
        document root's empty path renders as ``#document``."""
        out: dict = {}
        for schema_node, stats in self._stats.items():
            out[schema_node.path or "#document"] = stats.as_dict()
        return dict(sorted(out.items()))

    def reset(self) -> None:
        self._stats.clear()
        self._basis.clear()
        self._churn.clear()
        self._drifted_at.clear()

    # -- consistency ----------------------------------------------------

    @classmethod
    def recount(cls, engine: "StorageEngine") -> "StatisticsCollector":
        """Statistics rebuilt from scratch off the live block lists."""
        collector = cls()
        for schema_node in engine.schema.iter_nodes():
            for block in schema_node.blocks():
                ordered: list = []
                block.extend_in_order(ordered)
                for descriptor in ordered:
                    collector.note_added(descriptor)
        return collector

    def verify_consistency(self, engine: "StorageEngine") -> None:
        """The incremental digest must equal a from-scratch recount."""
        fresh = self.recount(engine).export()
        live = self.export()
        if live != fresh:
            drift = sorted(set(live) ^ set(fresh)) or \
                [path for path in live if live[path] != fresh[path]]
            raise StorageError(
                "statistics drifted from the stored data "
                f"(first divergent paths: {drift[:3]})")

    def __repr__(self) -> str:
        return f"StatisticsCollector({len(self._stats)} schema nodes)"
