"""A process-local metrics registry: counters, gauges, histograms.

The registry is the **one counter mechanism** of the repository: every
subsystem that counts something — cache hits, block splits, labels
allocated, conformance violations — does it through a
:class:`Counter`/:class:`Gauge`/:class:`Histogram` instrument, and
aggregate views (``repro stats``, the ``metrics`` section of
``benchmarks/run_all.py --json``) read one :meth:`MetricsRegistry
.snapshot`.

Two usage modes keep the hot paths honest:

* **inherent counters** (e.g. the LRU caches of ``repro.query.cache``)
  hold instrument objects directly and bump them unconditionally — an
  instrument ``inc`` is a plain attribute add, no cheaper mechanism
  exists;
* **optional instrumentation** (block splits, axis steps, FLWOR
  timings) is guarded by the module flag ``repro.obs.ENABLED`` at the
  call site, so the disabled path costs one attribute test and nothing
  else.

Instrument names are dotted paths (``storage.blocks.split``); the
registry keeps them unique and type-stable (asking for a counter under
a gauge's name is an error, not a silent cast).
"""

from __future__ import annotations

from typing import Dict, Iterator, Union


class Counter:
    """A monotonically increasing count (resettable for snapshots)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time level (last value wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A streaming summary of observed values (count/sum/min/max/mean).

    Full bucketing is deliberately omitted: the benchmark harness wants
    cheap aggregates it can diff across runs, not percentile estimates.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0) -> float:
        """The scalar value of a counter/gauge (histograms: the count)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value

    def snapshot(self) -> dict:
        """All instrument values keyed by name, sorted for stable JSON;
        histograms expand to their summary dict."""
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def reset(self) -> None:
        """Zero every instrument (registrations are kept, so counters
        materialized at zero stay visible in the next snapshot)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Forget every instrument (test isolation)."""
        self._instruments.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
