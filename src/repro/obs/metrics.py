"""A process-local metrics registry: counters, gauges, histograms.

The registry is the **one counter mechanism** of the repository: every
subsystem that counts something — cache hits, block splits, labels
allocated, conformance violations — does it through a
:class:`Counter`/:class:`Gauge`/:class:`Histogram` instrument, and
aggregate views (``repro stats``, the ``metrics`` section of
``benchmarks/run_all.py --json``) read one :meth:`MetricsRegistry
.snapshot`.

Two usage modes keep the hot paths honest:

* **inherent counters** (e.g. the LRU caches of ``repro.query.cache``)
  hold instrument objects directly and bump them unconditionally — an
  instrument ``inc`` is a plain attribute add, no cheaper mechanism
  exists;
* **optional instrumentation** (block splits, axis steps, FLWOR
  timings) is guarded at the call site by ``repro.obs.RECORDING`` —
  the derived flag that is true when either the always-on telemetry
  tier (``repro.obs.TELEMETRY``) or full diagnostics
  (``repro.obs.ENABLED``) is active — so the disabled path costs one
  attribute test and nothing else.

Instrument names are dotted paths (``storage.blocks.split``); the
registry keeps them unique and type-stable (asking for a counter under
a gauge's name is an error, not a silent cast).
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Union

#: Ring size of the histogram's sliding window — the sample the
#: percentiles are computed over.  512 recent observations bound both
#: memory and the sort cost of a percentile query while giving p99 a
#: meaningful tail (≥ 5 samples above it).
DEFAULT_WINDOW = 512


class Counter:
    """A monotonically increasing count (resettable for snapshots)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time level (last value wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming aggregates plus a sliding window for percentiles.

    ``observe`` is O(1) and allocation-free on the steady state: the
    running count/sum/min/max update, and the value lands in a
    preallocated ring of the most recent :data:`DEFAULT_WINDOW`
    observations.  Percentiles (p50/p95/p99, nearest-rank) are computed
    over that window only when asked — the sort cost sits on the
    reader (``repro stats`` / ``repro metrics``), never the hot path.
    Full bucketing stays deliberately omitted; a recent window is what
    an operator watching latency actually wants.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_window", "_size", "_cursor")

    def __init__(self, name: str, window: int = DEFAULT_WINDOW) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._window = [0.0] * window
        self._size = window
        self._cursor = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        cursor = self._cursor
        self._window[cursor] = value
        cursor += 1
        self._cursor = 0 if cursor == self._size else cursor

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def window_values(self) -> list:
        """The retained recent observations (unordered)."""
        if self.count >= len(self._window):
            return list(self._window)
        return self._window[:self.count]

    def percentiles(self) -> dict:
        """Nearest-rank p50/p95/p99 over the sliding window."""
        values = sorted(self.window_values())
        if not values:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        last = len(values) - 1

        def rank(q: float) -> float:
            return values[min(last, int(q * len(values)))]

        return {"p50": rank(0.50), "p95": rank(0.95),
                "p99": rank(0.99)}

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._cursor = 0

    def summary(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }
        out.update(self.percentiles())
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def value(self, name: str, default: float = 0) -> float:
        """The scalar value of a counter/gauge (histograms: the count)."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.count
        return instrument.value

    def snapshot(self) -> dict:
        """All instrument values keyed by name, sorted for stable JSON;
        histograms expand to their summary dict."""
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def structured(self) -> dict:
        """Instruments grouped by kind: counters and gauges as plain
        name→value maps, histograms expanded to their full summary
        (count/sum/min/max/mean plus p50/p95/p99) — the ``repro stats
        --json`` payload shape."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][name] = instrument.value
            else:
                out["histograms"][name] = instrument.summary()
        return out

    def reset(self) -> None:
        """Zero every instrument (registrations are kept, so counters
        materialized at zero stay visible in the next snapshot)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Forget every instrument (test isolation)."""
        self._instruments.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._instruments))

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


def _prom_name(name: str) -> str:
    """A dotted instrument name as a Prometheus metric name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Counters render as single samples under the conventional
    ``_total`` suffix; gauges as single samples; histograms as
    summaries — ``{quantile="…"}`` samples from the sliding window plus
    the lifetime ``_sum`` / ``_count`` pair.  The output is stable
    (name-sorted) so scrapes and golden tests diff cleanly.
    """
    lines: list = []
    for name in registry:
        instrument = registry.get(name)
        metric = _prom_name(name)
        if isinstance(instrument, Counter):
            metric += "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {instrument.value}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {instrument.value}")
        else:
            quantiles = instrument.percentiles()
            lines.append(f"# TYPE {metric} summary")
            for label, q in (("0.5", "p50"), ("0.95", "p95"),
                             ("0.99", "p99")):
                lines.append(f'{metric}{{quantile="{label}"}} '
                             f"{quantiles[q]}")
            lines.append(f"{metric}_sum {instrument.total}")
            lines.append(f"{metric}_count {instrument.count}")
    return "\n".join(lines) + "\n"
