"""Structured events: a bounded JSON-lines sink with severities.

The metrics registry answers "how much"; this log answers "what
happened".  An :class:`EventLog` records discrete, structured
occurrences — a slow query with its full EXPLAIN payload, a
checkpoint, a recovery — as :class:`EventRecord`\\ s carrying a
severity, a monotonic nanosecond timestamp (injectable clock, so
tests pin timestamps exactly) and arbitrary JSON-serializable fields.

The records live in a bounded ring (oldest dropped, a counter keeps
score) and export as JSON lines (:meth:`EventLog.to_jsonl`) — one
object per line, the shape log shippers ingest without adapters.

The marquee producer is the **slow-query log**: when
``repro.obs.SLOW_QUERY_NS`` is armed, every evaluation runs with
EXPLAIN collection and any query whose wall time exceeds the threshold
emits a ``query.slow`` event whose fields are the complete EXPLAIN
record (plan strategy, cache states, per-stage ns, index probes) —
captured *during* the slow run, not reconstructed after it.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Deque, Iterator, List, Optional

#: Default bound on retained events.
DEFAULT_EVENT_LIMIT = 1024

#: Severities in increasing order of concern.
SEVERITIES = ("debug", "info", "warn", "error")


class EventRecord:
    """One structured occurrence."""

    __slots__ = ("kind", "severity", "monotonic_ns", "fields")

    def __init__(self, kind: str, severity: str, monotonic_ns: int,
                 fields: dict) -> None:
        self.kind = kind
        self.severity = severity
        self.monotonic_ns = monotonic_ns
        self.fields = fields

    def as_dict(self) -> dict:
        out = {
            "event": self.kind,
            "severity": self.severity,
            "monotonic_ns": self.monotonic_ns,
        }
        out.update(self.fields)
        return out

    def __repr__(self) -> str:
        return (f"EventRecord({self.kind!r}, {self.severity}, "
                f"t={self.monotonic_ns}ns)")


class EventLog:
    """A bounded in-memory structured event sink.

    *clock* is any zero-argument callable returning monotonically
    increasing nanoseconds — ``time.monotonic_ns`` in production, a
    counter stub in determinism tests.
    """

    def __init__(self,
                 clock: Callable[[], int] = time.monotonic_ns,
                 limit: int = DEFAULT_EVENT_LIMIT) -> None:
        self._clock = clock
        self.limit = limit
        #: A deque ring: appends evict the oldest in O(1), so emit
        #: stays constant-time on the armed slow-query path.
        self.records: Deque[EventRecord] = deque(maxlen=limit)
        self.dropped = 0

    def emit(self, kind: str, severity: str = "info",
             **fields: object) -> EventRecord:
        """Record one event; returns the record for convenience."""
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r} "
                             f"(expected one of {SEVERITIES})")
        record = EventRecord(kind, severity, self._clock(),
                             dict(fields))
        if len(self.records) == self.limit:
            self.dropped += 1  # the append below evicts the oldest
        self.records.append(record)
        return record

    # -- inspection -----------------------------------------------------

    def set_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def find(self, kind: str) -> List[EventRecord]:
        return [r for r in self.records if r.kind == kind]

    def last(self, kind: Optional[str] = None) -> Optional[EventRecord]:
        if kind is None:
            return self.records[-1] if self.records else None
        matches = self.find(kind)
        return matches[-1] if matches else None

    def to_jsonl(self) -> str:
        """The log as JSON lines (one compact object per record)."""
        return "\n".join(
            json.dumps(record.as_dict(), separators=(",", ":"),
                       default=str)
            for record in self.records)

    def reset(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"EventLog({len(self.records)} events)"
