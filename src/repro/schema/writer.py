"""Serialization of the abstract syntax back to XSD source text.

``write_schema(parse_schema(text))`` produces a schema that re-parses
to an equivalent abstract syntax tree, which the round-trip tests
verify for every example in the paper.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.xmlio.nodes import XmlDocument, XmlElement
from repro.xmlio.qname import XSD_NAMESPACE, QName
from repro.xmlio.serializer import serialize_document
from repro.xsdtypes.base import AtomicType, ListType, SimpleType, UnionType
from repro.xsdtypes.facets import (
    EnumerationFacet,
    Facet,
    FractionDigitsFacet,
    LengthFacet,
    MaxExclusiveFacet,
    MaxInclusiveFacet,
    MaxLengthFacet,
    MinExclusiveFacet,
    MinInclusiveFacet,
    MinLengthFacet,
    PatternFacet,
    TotalDigitsFacet,
    WhiteSpaceFacet,
)
from repro.schema.ast import (
    AllGroup,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    InlineSimpleType,
    RepetitionFactor,
    SimpleContentType,
    TypeName,
    TypeRef,
)

_FACET_NAMES: tuple[tuple[type, str], ...] = (
    (LengthFacet, "length"),
    (MinLengthFacet, "minLength"),
    (MaxLengthFacet, "maxLength"),
    (MinInclusiveFacet, "minInclusive"),
    (MinExclusiveFacet, "minExclusive"),
    (MaxInclusiveFacet, "maxInclusive"),
    (MaxExclusiveFacet, "maxExclusive"),
    (TotalDigitsFacet, "totalDigits"),
    (FractionDigitsFacet, "fractionDigits"),
    (WhiteSpaceFacet, "whiteSpace"),
)


class SchemaWriter:
    """Writes a :class:`DocumentSchema` as XSD source."""

    def __init__(self, schema: DocumentSchema) -> None:
        self._schema = schema

    def to_document(self) -> XmlDocument:
        """Build the ``xsd:schema`` element tree."""
        decls = {"xsd": XSD_NAMESPACE}
        attrs: dict[QName, str] = {}
        if self._schema.target_namespace:
            attrs[QName("", "targetNamespace")] = (
                self._schema.target_namespace)
            decls[""] = self._schema.target_namespace
            attrs[QName("", "elementFormDefault")] = "qualified"
        root = XmlElement(self._xsd("schema"), attributes=attrs,
                          namespace_decls=decls)
        for qname, definition in self._schema.complex_types.items():
            elem = self._complex_type(definition)
            elem.attributes = {QName("", "name"): qname.local,
                               **elem.attributes}
            root.append(elem)
        root.append(self._element(self._schema.root_element))
        return XmlDocument(root)

    def to_text(self, indent: str | None = " ") -> str:
        """Serialize to XSD source text."""
        return serialize_document(self.to_document(), indent=indent)

    # ------------------------------------------------------------------

    @staticmethod
    def _xsd(local: str) -> QName:
        return QName(XSD_NAMESPACE, local, "xsd")

    def _type_lexical(self, name: TypeName) -> str:
        qname = name.qname
        if qname.uri == XSD_NAMESPACE:
            return f"xsd:{qname.local}"
        if qname.uri in ("", self._schema.target_namespace):
            return qname.local
        raise SchemaError(
            f"cannot serialize foreign type reference {qname.clark}")

    def _element(self, declaration: ElementDeclaration) -> XmlElement:
        attrs: dict[QName, str] = {QName("", "name"): declaration.name}
        children: list[XmlElement] = []
        if isinstance(declaration.type, TypeName):
            attrs[QName("", "type")] = self._type_lexical(declaration.type)
        elif isinstance(declaration.type, InlineSimpleType):
            children.append(
                self._simple_type(declaration.type.simple_type))
        else:
            children.append(self._complex_type(declaration.type))
        self._put_repetition(attrs, declaration.repetition)
        if declaration.nillable:
            attrs[QName("", "nillable")] = "true"
        element = XmlElement(self._xsd("element"), attributes=attrs)
        for child in children:
            element.append(child)
        return element

    @staticmethod
    def _put_repetition(attrs: dict[QName, str],
                        repetition: RepetitionFactor) -> None:
        if repetition.minimum != 1:
            attrs[QName("", "minOccurs")] = str(repetition.minimum)
        if repetition.maximum != 1:
            attrs[QName("", "maxOccurs")] = str(repetition.maximum)

    def _complex_type(self, definition: TypeRef) -> XmlElement:
        element = XmlElement(self._xsd("complexType"))
        if isinstance(definition, SimpleContentType):
            content = XmlElement(self._xsd("simpleContent"))
            extension = XmlElement(
                self._xsd("extension"),
                attributes={QName("", "base"):
                            self._type_lexical(definition.base)})
            for name, type_ref in definition.attributes:
                extension.append(self._attribute(name, type_ref))
            content.append(extension)
            element.append(content)
            return element
        if not isinstance(definition, ComplexContentType):
            raise SchemaError(f"not a complex type: {definition!r}")
        if definition.mixed:
            element.attributes[QName("", "mixed")] = "true"
        if definition.group is not None:
            element.append(self._group(definition.group))
        for name, type_ref in definition.attributes:
            element.append(self._attribute(name, type_ref))
        return element

    def _group(self, group: "GroupDefinition | AllGroup") -> XmlElement:
        attrs: dict[QName, str] = {}
        self._put_repetition(attrs, group.repetition)
        if isinstance(group, AllGroup):
            element = XmlElement(self._xsd("all"), attributes=attrs)
            for member in group.members:
                element.append(self._element(member))
            return element
        element = XmlElement(self._xsd(group.combination.value),
                             attributes=attrs)
        for member in group.members:
            if isinstance(member, ElementDeclaration):
                element.append(self._element(member))
            else:
                element.append(self._group(member))
        return element

    def _attribute(self, name: str,
                   type_ref: "TypeName | InlineSimpleType") -> XmlElement:
        attrs = {QName("", "name"): name}
        element = XmlElement(self._xsd("attribute"), attributes=attrs)
        if isinstance(type_ref, TypeName):
            attrs[QName("", "type")] = self._type_lexical(type_ref)
        else:
            element.append(self._simple_type(type_ref.simple_type))
        return element

    def _simple_type(self, simple: SimpleType) -> XmlElement:
        element = XmlElement(self._xsd("simpleType"))
        if isinstance(simple, ListType):
            body = XmlElement(self._xsd("list"))
            item = simple.item_type
            if item.name is not None:
                body.attributes[QName("", "itemType")] = (
                    self._type_lexical(TypeName(item.name)))
            else:
                body.append(self._simple_type(item))
            element.append(body)
            return element
        if isinstance(simple, UnionType):
            body = XmlElement(self._xsd("union"))
            named = [m for m in simple.member_types if m.name is not None]
            anonymous = [m for m in simple.member_types if m.name is None]
            if named:
                body.attributes[QName("", "memberTypes")] = " ".join(
                    self._type_lexical(TypeName(m.name)) for m in named)
            for member in anonymous:
                body.append(self._simple_type(member))
            element.append(body)
            return element
        if not isinstance(simple, AtomicType) or simple.base is None:
            raise SchemaError(
                f"cannot serialize simple type {simple.type_name}")
        base = simple.base
        if not isinstance(base, SimpleType) or base.name is None:
            raise SchemaError(
                "anonymous restriction requires a named base type")
        body = XmlElement(
            self._xsd("restriction"),
            attributes={QName("", "base"):
                        self._type_lexical(TypeName(base.name))})
        for facet in simple.facets:
            for facet_elem in self._facet_elements(facet, base):
                body.append(facet_elem)
        element.append(body)
        return element

    def _facet_elements(self, facet: Facet,
                        base: SimpleType) -> list[XmlElement]:
        if isinstance(facet, PatternFacet):
            return [XmlElement(self._xsd("pattern"),
                               attributes={QName("", "value"): pattern})
                    for pattern in facet.patterns]
        if isinstance(facet, EnumerationFacet):
            return [XmlElement(self._xsd("enumeration"),
                               attributes={QName("", "value"):
                                           base.canonical(value)})
                    for value in facet.values]
        for facet_cls, local in _FACET_NAMES:
            if isinstance(facet, facet_cls):
                if isinstance(facet, WhiteSpaceFacet):
                    value = facet.mode
                elif isinstance(facet, (MinInclusiveFacet, MinExclusiveFacet,
                                        MaxInclusiveFacet,
                                        MaxExclusiveFacet)):
                    value = base.canonical(facet.bound)
                else:
                    value = str(getattr(facet, "length", None)
                                if hasattr(facet, "length")
                                else facet.digits)
                return [XmlElement(self._xsd(local),
                                   attributes={QName("", "value"): value})]
        raise SchemaError(f"cannot serialize facet {facet!r}")


def write_schema(schema: DocumentSchema, indent: str | None = " ") -> str:
    """Serialize *schema* to XSD source text."""
    return SchemaWriter(schema).to_text(indent=indent)
