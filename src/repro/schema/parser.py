"""Parser from XSD source text to the Section 2–3 abstract syntax.

The supported subset is exactly the paper's abstract syntax plus the
documented extensions:

* ``xsd:schema`` with ``targetNamespace``, one global ``xsd:element``
  and any number of named ``xsd:complexType`` / ``xsd:simpleType``
  definitions (in any order, before or after the element);
* element declarations with ``type`` references or inline anonymous
  types, ``minOccurs`` / ``maxOccurs`` / ``nillable``;
* ``xsd:sequence`` and ``xsd:choice`` groups, nested groups included;
* ``xsd:attribute`` declarations with simple types;
* ``xsd:simpleContent``/``xsd:extension`` for simple-content complex
  types;
* inline and named simple types derived by ``xsd:restriction`` with
  the full facet set, plus ``xsd:list`` and ``xsd:union``.
"""

from __future__ import annotations

from repro.errors import SchemaSyntaxError
from repro.xmlio.nodes import XmlElement
from repro.xmlio.parser import parse_document
from repro.xmlio.qname import XSD_NAMESPACE, QName, split_prefixed
from repro.xsdtypes.base import ListType, SimpleType, UnionType
from repro.xsdtypes.facets import (
    EnumerationFacet,
    Facet,
    FractionDigitsFacet,
    LengthFacet,
    MaxExclusiveFacet,
    MaxInclusiveFacet,
    MaxLengthFacet,
    MinExclusiveFacet,
    MinInclusiveFacet,
    MinLengthFacet,
    PatternFacet,
    TotalDigitsFacet,
    WhiteSpaceFacet,
)
from repro.xsdtypes.registry import BUILTINS, TypeRegistry
from repro.schema.ast import (
    UNBOUNDED,
    AllGroup,
    AttributeDeclarations,
    CombinationFactor,
    ComplexContentType,
    ComplexType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    GroupMember,
    InlineSimpleType,
    RepetitionFactor,
    TypeName,
    TypeRef,
)

_BOUND_FACETS = {
    "minInclusive": MinInclusiveFacet,
    "minExclusive": MinExclusiveFacet,
    "maxInclusive": MaxInclusiveFacet,
    "maxExclusive": MaxExclusiveFacet,
}

_INT_FACETS = {
    "length": LengthFacet,
    "minLength": MinLengthFacet,
    "maxLength": MaxLengthFacet,
    "totalDigits": TotalDigitsFacet,
    "fractionDigits": FractionDigitsFacet,
}


class SchemaParser:
    """Parses one XSD document into a :class:`DocumentSchema`."""

    def __init__(self, registry: TypeRegistry | None = None) -> None:
        self._base_registry = registry or BUILTINS

    def parse(self, text: str) -> DocumentSchema:
        """Parse XSD source *text*."""
        document = parse_document(text)
        return self.parse_tree(document.root)

    def parse_tree(self, schema_elem: XmlElement) -> DocumentSchema:
        """Parse an already-parsed ``xsd:schema`` element."""
        if schema_elem.name != QName(XSD_NAMESPACE, "schema"):
            raise SchemaSyntaxError(
                f"expected xsd:schema, got {schema_elem.name.clark}")
        self._registry = self._base_registry.clone()
        self._target_ns = schema_elem.get("targetNamespace", "") or ""
        self._env: list[dict[str, str]] = [dict(schema_elem.namespace_decls)]

        global_elements: list[XmlElement] = []
        named_complex: list[XmlElement] = []
        named_simple: list[XmlElement] = []
        for child in schema_elem.element_children():
            if child.name.uri != XSD_NAMESPACE:
                raise SchemaSyntaxError(
                    f"unexpected non-XSD element {child.name.clark}")
            if child.name.local == "element":
                global_elements.append(child)
            elif child.name.local == "complexType":
                named_complex.append(child)
            elif child.name.local == "simpleType":
                named_simple.append(child)
            elif child.name.local in ("annotation", "import", "include"):
                continue
            else:
                raise SchemaSyntaxError(
                    f"unsupported top-level construct xsd:{child.name.local}")

        if len(global_elements) != 1:
            raise SchemaSyntaxError(
                "the paper's model requires exactly one global element "
                f"declaration, found {len(global_elements)}")

        # Named simple types first (complex types may reference them).
        for elem in named_simple:
            name = self._required(elem, "name")
            simple = self._parse_simple_type(
                elem, name=QName(self._target_ns, name))
            self._registry.register(simple)

        # Two-pass complex types: first collect names so that forward and
        # recursive references resolve, then parse bodies.
        complex_types: dict[QName, ComplexType] = {}
        pending: list[tuple[QName, XmlElement]] = []
        for elem in named_complex:
            name = self._required(elem, "name")
            qname = QName(self._target_ns, name)
            if qname in complex_types:
                raise SchemaSyntaxError(
                    f"duplicate complex type name {name!r}")
            complex_types[qname] = ComplexContentType()  # placeholder
            pending.append((qname, elem))
        for qname, elem in pending:
            complex_types[qname] = self._parse_complex_type(elem)

        root = self._parse_element_declaration(global_elements[0])
        return DocumentSchema(
            root_element=root,
            complex_types=complex_types,
            target_namespace=self._target_ns,
            registry=self._registry)

    # ------------------------------------------------------------------
    # Helpers

    @staticmethod
    def _required(elem: XmlElement, attr: str) -> str:
        value = elem.get(attr)
        if value is None:
            raise SchemaSyntaxError(
                f"xsd:{elem.name.local} requires a {attr!r} attribute")
        return value

    def _push_env(self, elem: XmlElement) -> None:
        self._env.append(dict(elem.namespace_decls))

    def _pop_env(self) -> None:
        self._env.pop()

    def _resolve_value_qname(self, lexical: str) -> QName:
        """Resolve a QName appearing in an attribute value."""
        prefix, local = split_prefixed(lexical)
        for bindings in reversed(self._env):
            if prefix in bindings:
                return QName(bindings[prefix], local, prefix)
        if prefix:
            raise SchemaSyntaxError(
                f"undeclared prefix {prefix!r} in type reference {lexical!r}")
        return QName("", local)

    def _xsd_children(self, elem: XmlElement) -> list[XmlElement]:
        out = []
        for child in elem.element_children():
            if child.name.uri != XSD_NAMESPACE:
                raise SchemaSyntaxError(
                    f"unexpected element {child.name.clark} inside "
                    f"xsd:{elem.name.local}")
            if child.name.local == "annotation":
                continue
            out.append(child)
        return out

    # ------------------------------------------------------------------
    # Element declarations

    def _parse_element_declaration(
            self, elem: XmlElement) -> ElementDeclaration:
        self._push_env(elem)
        try:
            name = self._required(elem, "name")
            repetition = self._parse_repetition(elem)
            nillable = elem.get("nillable", "false") in ("true", "1")
            type_attr = elem.get("type")
            children = self._xsd_children(elem)
            if type_attr is not None:
                if children:
                    raise SchemaSyntaxError(
                        f"element {name!r} has both a type attribute and "
                        "an inline type")
                type_ref: TypeRef = TypeName(
                    self._resolve_value_qname(type_attr))
            elif children:
                (inline,) = children
                if inline.name.local == "complexType":
                    type_ref = self._parse_complex_type(inline)
                elif inline.name.local == "simpleType":
                    type_ref = InlineSimpleType(
                        self._parse_simple_type(inline))
                else:
                    raise SchemaSyntaxError(
                        f"unexpected xsd:{inline.name.local} inside "
                        f"element {name!r}")
            else:
                # No type at all: xs:anyType in XSD; the paper's subset
                # treats it as untyped string content.
                type_ref = TypeName(QName(XSD_NAMESPACE, "string", "xs"))
            return ElementDeclaration(
                name=name, type=type_ref,
                repetition=repetition, nillable=nillable)
        finally:
            self._pop_env()

    def _parse_repetition(self, elem: XmlElement) -> RepetitionFactor:
        minimum = elem.get("minOccurs", "1")
        maximum = elem.get("maxOccurs", "1")
        try:
            min_value = int(minimum)
        except ValueError:
            raise SchemaSyntaxError(
                f"bad minOccurs {minimum!r}") from None
        if maximum == UNBOUNDED:
            return RepetitionFactor(min_value, UNBOUNDED)
        try:
            max_value = int(maximum)
        except ValueError:
            raise SchemaSyntaxError(
                f"bad maxOccurs {maximum!r}") from None
        return RepetitionFactor(min_value, max_value)

    # ------------------------------------------------------------------
    # Complex types

    def _parse_complex_type(self, elem: XmlElement) -> ComplexType:
        self._push_env(elem)
        try:
            mixed = elem.get("mixed", "false") in ("true", "1")
            children = self._xsd_children(elem)
            if children and children[0].name.local == "simpleContent":
                if mixed:
                    raise SchemaSyntaxError(
                        "simpleContent cannot be mixed")
                return self._parse_simple_content(children[0])
            group: GroupDefinition | None = None
            attributes: list[tuple[str, TypeName | InlineSimpleType]] = []
            for child in children:
                if child.name.local == "all":
                    if group is not None:
                        raise SchemaSyntaxError(
                            "at most one content group per complex type")
                    group = self._parse_all(child)
                elif child.name.local in ("sequence", "choice"):
                    if group is not None:
                        raise SchemaSyntaxError(
                            "at most one content group per complex type")
                    if attributes:
                        raise SchemaSyntaxError(
                            "the content group must precede attributes")
                    group = self._parse_group(child)
                elif child.name.local == "attribute":
                    attributes.append(self._parse_attribute(child))
                else:
                    raise SchemaSyntaxError(
                        f"unsupported construct xsd:{child.name.local} "
                        "inside complexType")
            return ComplexContentType(
                mixed=mixed, group=group,
                attributes=AttributeDeclarations(tuple(attributes)))
        finally:
            self._pop_env()

    def _parse_simple_content(self, elem: XmlElement) -> ComplexType:
        from repro.schema.ast import SimpleContentType
        children = self._xsd_children(elem)
        if len(children) != 1 or children[0].name.local != "extension":
            raise SchemaSyntaxError(
                "simpleContent must hold exactly one xsd:extension")
        extension = children[0]
        self._push_env(extension)
        try:
            base = TypeName(self._resolve_value_qname(
                self._required(extension, "base")))
            attributes = []
            for child in self._xsd_children(extension):
                if child.name.local != "attribute":
                    raise SchemaSyntaxError(
                        "only attributes may extend a simple content base")
                attributes.append(self._parse_attribute(child))
            return SimpleContentType(
                base=base,
                attributes=AttributeDeclarations(tuple(attributes)))
        finally:
            self._pop_env()

    def _parse_group(self, elem: XmlElement) -> GroupDefinition:
        combination = (CombinationFactor.SEQUENCE
                       if elem.name.local == "sequence"
                       else CombinationFactor.CHOICE)
        repetition = self._parse_repetition(elem)
        members: list[GroupMember] = []
        for child in self._xsd_children(elem):
            if child.name.local == "element":
                members.append(self._parse_element_declaration(child))
            elif child.name.local in ("sequence", "choice"):
                members.append(self._parse_group(child))
            else:
                raise SchemaSyntaxError(
                    f"unsupported group member xsd:{child.name.local}")
        return GroupDefinition(
            members=tuple(members),
            combination=combination,
            repetition=repetition)

    def _parse_all(self, elem: XmlElement) -> AllGroup:
        repetition = self._parse_repetition(elem)
        members: list[ElementDeclaration] = []
        for child in self._xsd_children(elem):
            if child.name.local != "element":
                raise SchemaSyntaxError(
                    "xsd:all may only hold element declarations")
            members.append(self._parse_element_declaration(child))
        return AllGroup(members=tuple(members), repetition=repetition)

    def _parse_attribute(
            self, elem: XmlElement) -> tuple[str, TypeName | InlineSimpleType]:
        self._push_env(elem)
        try:
            name = self._required(elem, "name")
            type_attr = elem.get("type")
            children = self._xsd_children(elem)
            if type_attr is not None:
                return name, TypeName(self._resolve_value_qname(type_attr))
            if children and children[0].name.local == "simpleType":
                return name, InlineSimpleType(
                    self._parse_simple_type(children[0]))
            return name, TypeName(QName(XSD_NAMESPACE, "string", "xs"))
        finally:
            self._pop_env()

    # ------------------------------------------------------------------
    # Simple types (extension: inline restriction / list / union)

    def _parse_simple_type(self, elem: XmlElement,
                           name: QName | None = None) -> SimpleType:
        self._push_env(elem)
        try:
            children = self._xsd_children(elem)
            if len(children) != 1:
                raise SchemaSyntaxError(
                    "simpleType must hold exactly one of "
                    "restriction/list/union")
            body = children[0]
            if body.name.local == "restriction":
                return self._parse_restriction(body, name)
            if body.name.local == "list":
                return self._parse_list(body, name)
            if body.name.local == "union":
                return self._parse_union(body, name)
            raise SchemaSyntaxError(
                f"unsupported simpleType body xsd:{body.name.local}")
        finally:
            self._pop_env()

    def _lookup_simple(self, lexical: str) -> SimpleType:
        qname = self._resolve_value_qname(lexical)
        return self._registry.lookup_simple(qname)

    def _parse_restriction(self, elem: XmlElement,
                           name: QName | None) -> SimpleType:
        base = self._lookup_simple(self._required(elem, "base"))
        facets: list[Facet] = []
        patterns: list[str] = []
        enum_values: list[object] = []
        for child in self._xsd_children(elem):
            local = child.name.local
            value = self._required(child, "value")
            if local in _BOUND_FACETS:
                facets.append(_BOUND_FACETS[local](base.parse(value)))
            elif local in _INT_FACETS:
                facets.append(_INT_FACETS[local](int(value)))
            elif local == "pattern":
                patterns.append(value)
            elif local == "enumeration":
                enum_values.append(base.parse(value))
            elif local == "whiteSpace":
                facets.append(WhiteSpaceFacet(value))
            else:
                raise SchemaSyntaxError(f"unsupported facet xsd:{local}")
        if patterns:
            facets.append(PatternFacet(tuple(patterns)))
        if enum_values:
            facets.append(EnumerationFacet(tuple(enum_values)))
        return base.restrict(facets, name=name)

    def _parse_list(self, elem: XmlElement,
                    name: QName | None) -> SimpleType:
        item_attr = elem.get("itemType")
        if item_attr is not None:
            item_type = self._lookup_simple(item_attr)
        else:
            children = self._xsd_children(elem)
            if len(children) != 1 or children[0].name.local != "simpleType":
                raise SchemaSyntaxError(
                    "xsd:list needs an itemType or inline simpleType")
            item_type = self._parse_simple_type(children[0])
        return ListType(name, item_type)

    def _parse_union(self, elem: XmlElement,
                     name: QName | None) -> SimpleType:
        members: list[SimpleType] = []
        member_attr = elem.get("memberTypes")
        if member_attr:
            for lexical in member_attr.split():
                members.append(self._lookup_simple(lexical))
        for child in self._xsd_children(elem):
            if child.name.local != "simpleType":
                raise SchemaSyntaxError(
                    "only simpleType children allowed inside xsd:union")
            members.append(self._parse_simple_type(child))
        return UnionType(name, members)


def parse_schema(text: str,
                 registry: TypeRegistry | None = None) -> DocumentSchema:
    """Parse XSD source text into a :class:`DocumentSchema`."""
    return SchemaParser(registry).parse(text)
