"""Abstract syntax of element declarations, types and schemas (§2–§3).

The classes here mirror the paper's syntactic domains one-for-one:

========================  =============================================
Paper domain              Class
========================  =============================================
ElementDeclaration        :class:`ElementDeclaration`
RepetitionFactor          :class:`RepetitionFactor`
GroupDefinition           :class:`GroupDefinition`
CombinationFactor         :class:`CombinationFactor`
AttributeDeclarations     :class:`AttributeDeclarations`
Type (simple content)     :class:`SimpleContentType`
Type (complex content)    :class:`ComplexContentType`
TypeName                  :class:`TypeName`
AnonymousTypeDefinition   an inline :class:`SimpleContentType`/
                          :class:`ComplexContentType`/
                          :class:`InlineSimpleType`
DocumentSchema            :class:`DocumentSchema`
========================  =============================================

Footnote 1 of the paper notes that a local group definition may itself
be a group definition; we support that nesting as the documented
extension (the Section 6.2 checker handles the paper's flat core, the
general content-model matcher handles nesting).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Union as TypingUnion

from repro.errors import SchemaError, TypeUsageError
from repro.xmlio.chars import is_ncname
from repro.xmlio.qname import XSD_NAMESPACE, QName
from repro.xsdtypes.base import SimpleType
from repro.xsdtypes.registry import BUILTINS, TypeRegistry

#: The distinguished maximum, ``Union(NatNumber, {"unbounded"})``.
UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class RepetitionFactor:
    """``Pair(Minimum, Maximum)`` — the (minOccurs, maxOccurs) pair."""

    minimum: int = 1
    maximum: int | str = 1

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise SchemaError("minOccurs must be a natural number")
        if self.maximum != UNBOUNDED:
            if not isinstance(self.maximum, int) or self.maximum < 0:
                raise SchemaError(
                    "maxOccurs must be a natural number or 'unbounded'")
            if self.maximum < self.minimum:
                raise SchemaError(
                    f"maxOccurs {self.maximum} < minOccurs {self.minimum}")

    @property
    def unbounded(self) -> bool:
        return self.maximum == UNBOUNDED

    def permits(self, count: int) -> bool:
        """True iff *count* occurrences satisfy this factor."""
        if count < self.minimum:
            return False
        return self.unbounded or count <= self.maximum

    def as_pair(self) -> tuple[int, int | str]:
        return (self.minimum, self.maximum)

    def __repr__(self) -> str:
        return f"({self.minimum}, {self.maximum})"


#: The default repetition factor (minOccurs=1, maxOccurs=1).
ONCE = RepetitionFactor(1, 1)


class CombinationFactor(enum.Enum):
    """``Enumeration("sequence", "choice")``."""

    SEQUENCE = "sequence"
    CHOICE = "choice"

    def __repr__(self) -> str:
        return f"CombinationFactor.{self.name}"


@dataclass(frozen=True)
class TypeName:
    """A reference to a named (simple or complex) type."""

    qname: QName

    @property
    def is_xsd_builtin(self) -> bool:
        return self.qname.uri == XSD_NAMESPACE

    def __repr__(self) -> str:
        return f"TypeName({self.qname.lexical})"


@dataclass(frozen=True)
class InlineSimpleType:
    """An anonymous simple type defined inline (restriction/list/union).

    The paper assumes all simple types are predefined and named; inline
    simple types are supported as a documented extension because XSD
    uses them pervasively.
    """

    simple_type: SimpleType

    def __repr__(self) -> str:
        return f"InlineSimpleType({self.simple_type.type_name})"


@dataclass(frozen=True)
class ElementDeclaration:
    """``Tuple(ElemName, Type, RepetitionFactor, NillIndicator)``."""

    name: str
    type: "TypeRef"
    repetition: RepetitionFactor = ONCE
    nillable: bool = False

    def __post_init__(self) -> None:
        if not is_ncname(self.name):
            raise SchemaError(f"invalid element name {self.name!r}")

    def as_tuple(self) -> tuple:
        """The formal 4-tuple of the paper."""
        return (self.name, self.type, self.repetition, self.nillable)

    def __repr__(self) -> str:
        return (f"ElementDeclaration({self.name!r}, {self.type!r}, "
                f"{self.repetition!r}, nillable={self.nillable})")


GroupMember = TypingUnion[ElementDeclaration, "GroupDefinition"]


@dataclass(frozen=True)
class AllGroup:
    """An *all option definition* (footnote 2 of the paper).

    Children may appear in any order; per XSD 1.0 every member is an
    element declaration occurring at most once, and the group itself
    is not repeatable.
    """

    members: tuple[ElementDeclaration, ...] = ()
    repetition: RepetitionFactor = ONCE

    def __post_init__(self) -> None:
        names = [m.name for m in self.members]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"element names in an all group must differ: {names}")
        for member in self.members:
            if not isinstance(member, ElementDeclaration):
                raise SchemaError(
                    "an all group may only hold element declarations")
            if member.repetition.maximum not in (0, 1):
                raise SchemaError(
                    "all-group members may occur at most once")
        if self.repetition.as_pair() not in ((0, 1), (1, 1)):
            raise SchemaError("an all group itself is not repeatable")

    @property
    def empty_content(self) -> bool:
        return not self.members

    @property
    def is_flat(self) -> bool:
        return True

    def element_declarations(self) -> Iterator[ElementDeclaration]:
        yield from self.members

    def __repr__(self) -> str:
        return f"AllGroup({len(self.members)} members)"


@dataclass(frozen=True)
class GroupDefinition:
    """``Tuple(Seq(LocalGroupDefinition), CombinationFactor,
    RepetitionFactor)``.

    A group with no members has the paper's *empty content*, in which
    case the combination and repetition factors are meaningless.
    """

    members: tuple[GroupMember, ...] = ()
    combination: CombinationFactor = CombinationFactor.SEQUENCE
    repetition: RepetitionFactor = ONCE

    def __post_init__(self) -> None:
        names = [m.name for m in self.members
                 if isinstance(m, ElementDeclaration)]
        if len(set(names)) != len(names):
            raise SchemaError(
                "element names in a group must be pairwise different: "
                f"{names}")

    @property
    def empty_content(self) -> bool:
        return not self.members

    @property
    def is_flat(self) -> bool:
        """True iff every member is an element declaration (paper core)."""
        return all(isinstance(m, ElementDeclaration) for m in self.members)

    def element_declarations(self) -> Iterator[ElementDeclaration]:
        """All element declarations in the group, recursively."""
        for member in self.members:
            if isinstance(member, ElementDeclaration):
                yield member
            else:
                yield from member.element_declarations()

    def __repr__(self) -> str:
        return (f"GroupDefinition({len(self.members)} members, "
                f"{self.combination.value}, {self.repetition!r})")


@dataclass(frozen=True)
class AttributeDeclarations:
    """``FM(AttrName, SimpleTypeName)`` — an ordered finite mapping."""

    items: tuple[tuple[str, "TypeName | InlineSimpleType"], ...] = ()

    def __post_init__(self) -> None:
        names = [name for name, _ in self.items]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        for name, _ in self.items:
            if not is_ncname(name):
                raise SchemaError(f"invalid attribute name {name!r}")

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def __iter__(self) -> Iterator[tuple[str, "TypeName | InlineSimpleType"]]:
        return iter(self.items)

    def names(self) -> tuple[str, ...]:
        """``dom(atds)`` — the declared attribute names, in order."""
        return tuple(name for name, _ in self.items)

    def type_of(self, name: str) -> "TypeName | InlineSimpleType":
        for item_name, type_ref in self.items:
            if item_name == name:
                return type_ref
        raise KeyError(name)

    def __repr__(self) -> str:
        body = ", ".join(f"{n}: {t!r}" for n, t in self.items)
        return f"AttributeDeclarations({body})"


#: The empty attribute declaration mapping.
NO_ATTRIBUTES = AttributeDeclarations()


@dataclass(frozen=True)
class SimpleContentType:
    """A complex type with simple content: a simple type plus attributes.

    Example 5 of the paper: a ``xsd:decimal`` value carrying a
    ``currency`` attribute.
    """

    base: "TypeName | InlineSimpleType"
    attributes: AttributeDeclarations = NO_ATTRIBUTES

    def __repr__(self) -> str:
        return f"SimpleContentType({self.base!r}, {self.attributes!r})"


@dataclass(frozen=True)
class ComplexContentType:
    """A complex type with complex content: ``(mid, leds, atds)``.

    ``group`` is the local element declarations (``leds``); ``None``
    stands for the paper's attribute-only variant ``(mid, atds)``.
    A present group with no members is the *empty content* case 5.4.1.
    """

    mixed: bool = False
    group: "GroupDefinition | AllGroup | None" = None
    attributes: AttributeDeclarations = NO_ATTRIBUTES

    @property
    def has_element_content(self) -> bool:
        return self.group is not None and not self.group.empty_content

    def __repr__(self) -> str:
        return (f"ComplexContentType(mixed={self.mixed}, "
                f"group={self.group!r}, attributes={self.attributes!r})")


ComplexType = TypingUnion[SimpleContentType, ComplexContentType]
TypeRef = TypingUnion[TypeName, SimpleContentType, ComplexContentType,
                      InlineSimpleType]


class DocumentSchema:
    """``Pair(GlobElementDeclaration, ComplexTypeDefinitionSet)`` (§3).

    A schema has exactly one global element declaration (the paper's
    single-root restriction) and a finite mapping ``ctd`` of complex
    type names to definitions.  ``registry`` resolves simple type
    names; it defaults to the builtin registry.
    """

    def __init__(self, root_element: ElementDeclaration,
                 complex_types: dict[QName, ComplexType] | None = None,
                 target_namespace: str = "",
                 registry: TypeRegistry | None = None) -> None:
        self.root_element = root_element
        self.complex_types: dict[QName, ComplexType] = dict(
            complex_types or {})
        self.target_namespace = target_namespace
        self.registry = registry or BUILTINS
        self.check_type_usage()

    # -- resolution -----------------------------------------------------

    def resolve(self, ref: TypeRef) -> "SimpleType | ComplexType":
        """Resolve a type reference to a simple type or a complex type.

        Implements the §3 requirement: a named type must be in
        ``dom(ctd)`` or a simple type name; anonymous definitions stand
        for themselves.
        """
        if isinstance(ref, (SimpleContentType, ComplexContentType)):
            return ref
        if isinstance(ref, InlineSimpleType):
            return ref.simple_type
        if isinstance(ref, TypeName):
            if ref.qname in self.complex_types:
                return self.complex_types[ref.qname]
            if ref.qname in self.registry:
                type_ = self.registry.lookup(ref.qname)
                if isinstance(type_, SimpleType):
                    return type_
            raise TypeUsageError(
                f"type {ref.qname.lexical} is neither in dom(ctd) nor "
                "a simple type name")
        raise TypeUsageError(f"unrecognized type reference {ref!r}")

    def is_simple_ref(self, ref: TypeRef) -> bool:
        """True iff *ref* resolves to a simple type."""
        return isinstance(self.resolve(ref), SimpleType)

    # -- §3 type-usage requirement ----------------------------------------

    def check_type_usage(self) -> None:
        """Verify every type reference in the schema resolves."""
        for ref in self.iter_type_refs():
            self.resolve(ref)

    def iter_type_refs(self) -> Iterator[TypeRef]:
        """Every type reference appearing anywhere in the schema."""
        yield from self._refs_of(self.root_element.type)
        for definition in self.complex_types.values():
            yield from self._refs_of(definition)

    def _refs_of(self, ref: TypeRef) -> Iterator[TypeRef]:
        yield ref
        if isinstance(ref, SimpleContentType):
            yield ref.base
            for _name, attr_ref in ref.attributes:
                yield attr_ref
        elif isinstance(ref, ComplexContentType):
            for _name, attr_ref in ref.attributes:
                yield attr_ref
            if ref.group is not None:
                for eld in ref.group.element_declarations():
                    yield from self._refs_of(eld.type)

    # -- misc ------------------------------------------------------------

    def type_qname(self, local: str) -> QName:
        """The QName of a schema-defined type named *local*."""
        return QName(self.target_namespace, local)

    def __repr__(self) -> str:
        return (f"DocumentSchema(root={self.root_element.name!r}, "
                f"{len(self.complex_types)} complex types)")
