"""Abstract syntax of XML Schema (Sections 2-3) and its XSD surface form.

The package contains the formal type constructors of Section 2, the AST
classes mirroring the paper's syntactic domains, a parser from the XSD
subset into the AST, a writer back to XSD text, and static schema
well-formedness diagnostics.
"""

from repro.schema.ast import (
    NO_ATTRIBUTES,
    AllGroup,
    ONCE,
    UNBOUNDED,
    AttributeDeclarations,
    CombinationFactor,
    ComplexContentType,
    ComplexType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    GroupMember,
    InlineSimpleType,
    RepetitionFactor,
    SimpleContentType,
    TypeName,
    TypeRef,
)
from repro.schema.normalize import (
    normalize_group,
    normalize_schema,
    normalize_type,
)
from repro.schema.parser import SchemaParser, parse_schema
from repro.schema.wellformed import SchemaIssue, SchemaLinter, lint_schema
from repro.schema.writer import SchemaWriter, write_schema

__all__ = [
    "AllGroup",
    "AttributeDeclarations",
    "CombinationFactor",
    "ComplexContentType",
    "ComplexType",
    "DocumentSchema",
    "ElementDeclaration",
    "GroupDefinition",
    "GroupMember",
    "InlineSimpleType",
    "NO_ATTRIBUTES",
    "ONCE",
    "RepetitionFactor",
    "SchemaIssue",
    "SchemaLinter",
    "SchemaParser",
    "SchemaWriter",
    "SimpleContentType",
    "TypeName",
    "TypeRef",
    "UNBOUNDED",
    "lint_schema",
    "normalize_group",
    "normalize_schema",
    "normalize_type",
    "parse_schema",
    "write_schema",
]
