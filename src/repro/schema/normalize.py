"""Canonical forms of schemas (after Novak & Kuznetsov [15]).

The paper's reference [15] studies rewriting schemas into canonical
form; this module implements the core language-preserving rewrite
rules on the Section 2 abstract syntax:

1. **unwrap** — a group whose only member is a group, with neutral
   (1,1) repetition on either side, collapses into one group;
2. **flatten** — a (1,1) sequence nested in a sequence (or choice in
   choice) is spliced into its parent, provided the element-name
   distinctness constraint of Section 2 still holds;
3. **fuse repetition** — nested repetitions multiply,
   ``X{m,n}{p,q} → X{m·p, n·q}``, when the classic soundness condition
   holds (the ranges tile without gaps);
4. **prune** — members that can match nothing (``maxOccurs=0``) are
   dropped, and a choice with one alternative becomes that alternative.

Every rule preserves the generated language; the test suite verifies
this by cross-checking the derivative matcher on random words before
and after normalization.
"""

from __future__ import annotations

from repro.schema.ast import (
    UNBOUNDED,
    AllGroup,
    CombinationFactor,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    GroupMember,
    RepetitionFactor,
    SimpleContentType,
    TypeRef,
)


def _fuse_bounds(inner: RepetitionFactor,
                 outer: RepetitionFactor) -> RepetitionFactor | None:
    """``X{m,n}{p,q} ≡ X{m·p, n·q}`` when sound, else None.

    The count language of the nested form is ``⋃_{k∈[p,q]} [k·m, k·n]``
    (with ``[0,0]`` for k = 0).  Fusion is sound exactly when that
    union is one contiguous interval:

    * ``q = 0`` — the language is {0};
    * ``p = q`` — a single interval ``[m·p, n·p]``, always fusable;
    * ``p = 0 < q`` — {0} joins the rest only when ``m ≤ 1``;
    * unbounded ``n`` — one copy already reaches infinity: ``[m·p, ∞)``;
    * otherwise the gap between consecutive k-intervals must close at
      the binding (smallest) ``k = max(p, 1)``:
      ``(k+1)·m ≤ k·n + 1``.
    """
    m, n = inner.minimum, inner.maximum
    p, q = outer.minimum, outer.maximum
    if q == 0:
        return RepetitionFactor(0, 0)
    if q == p:  # numeric and at least 1 here
        upper: int | str = UNBOUNDED if n == UNBOUNDED else int(n) * p
        return RepetitionFactor(m * p, upper)
    if p == 0 and m > 1:
        return None  # gap between the empty word and m copies
    if n == UNBOUNDED:
        return RepetitionFactor(m * p, UNBOUNDED)
    n_int = int(n)
    k = max(p, 1)
    if (k + 1) * m > k * n_int + 1:
        return None
    upper = UNBOUNDED if q == UNBOUNDED else n_int * int(q)
    return RepetitionFactor(m * p, upper)


def normalize_group(group: GroupDefinition) -> GroupDefinition:
    """Apply the rewrite rules bottom-up until a fixed point."""
    current = group
    for _ in range(64):  # fixed-point iteration with a safety bound
        rewritten = _rewrite_once(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _rewrite_once(group: GroupDefinition) -> GroupDefinition:
    # Pass 1: normalize members bottom-up, pruning and fusing.
    in_sequence = group.combination is CombinationFactor.SEQUENCE
    processed: list[GroupMember] = []
    for member in group.members:
        if isinstance(member, GroupDefinition):
            member = _rewrite_once(member)
            if in_sequence and (member.repetition.maximum == 0
                                or member.empty_content):
                # ε members are the unit of concatenation; they may be
                # dropped from a sequence but not from a choice.
                continue
            processed.append(_try_fuse(member))
        else:
            if in_sequence and member.repetition.maximum == 0:
                continue
            processed.append(member)

    # Pass 2: splice nested groups, honouring the Section 2 rule that
    # element names within one group must be pairwise different — the
    # check covers *all* siblings, earlier and later.
    taken: set[str] = {m.name for m in processed
                       if isinstance(m, ElementDeclaration)}
    members: list[GroupMember] = []
    for member in processed:
        if isinstance(member, GroupDefinition) and \
                _can_splice(group, member):
            names = {eld.name for eld in member.members
                     if isinstance(eld, ElementDeclaration)}
            if not names & taken:
                taken |= names
                members.extend(member.members)
                continue
        members.append(member)

    combination = group.combination
    repetition = group.repetition
    # unwrap: a singleton group wrapping a group.
    if len(members) == 1 and isinstance(members[0], GroupDefinition):
        inner = members[0]
        fused = _fuse_bounds(inner.repetition, repetition)
        if fused is not None:
            return GroupDefinition(inner.members, inner.combination,
                                   fused)
    # prune: single-alternative choice behaves like a sequence.
    if combination is CombinationFactor.CHOICE and len(members) == 1:
        combination = CombinationFactor.SEQUENCE
    return GroupDefinition(tuple(members), combination, repetition)


def _try_fuse(member: GroupDefinition) -> GroupDefinition:
    """Fuse a singleton repetition wrapper with its single child."""
    if len(member.members) != 1:
        return member
    (child,) = member.members
    if isinstance(child, ElementDeclaration):
        fused = _fuse_bounds(child.repetition, member.repetition)
        if fused is None:
            return member
        collapsed = ElementDeclaration(child.name, child.type, fused,
                                       child.nillable)
        return GroupDefinition((collapsed,), member.combination,
                               RepetitionFactor(1, 1))
    return member


def _can_splice(parent: GroupDefinition,
                member: GroupDefinition) -> bool:
    """flatten precondition: same combination (or a singleton, whose
    combination is irrelevant) and neutral repetition; the name-
    distinctness check happens at the call site over all siblings."""
    if not member.members:
        # An empty group is ε: splicing (i.e. dropping) it is sound in
        # a sequence but would delete a choice's ε alternative.
        return parent.combination is CombinationFactor.SEQUENCE
    if (member.combination is not parent.combination
            and len(member.members) > 1):
        return False
    if member.repetition.as_pair() != (1, 1):
        return False
    return True


def normalize_type(definition: TypeRef) -> TypeRef:
    """Normalize the group inside a complex type, recursively."""
    if isinstance(definition, SimpleContentType):
        return definition
    if not isinstance(definition, ComplexContentType):
        return definition
    group = definition.group
    if group is None or isinstance(group, AllGroup):
        return definition
    normalized_members = tuple(
        _normalize_member(member) for member in group.members)
    normalized = normalize_group(
        GroupDefinition(normalized_members, group.combination,
                        group.repetition))
    if normalized == group:
        return definition
    return ComplexContentType(mixed=definition.mixed,
                              group=normalized,
                              attributes=definition.attributes)


def _normalize_member(member: GroupMember) -> GroupMember:
    if isinstance(member, ElementDeclaration):
        if isinstance(member.type, (SimpleContentType,
                                    ComplexContentType)):
            normalized = normalize_type(member.type)
            if normalized is not member.type:
                return ElementDeclaration(member.name, normalized,
                                          member.repetition,
                                          member.nillable)
        return member
    return GroupDefinition(
        tuple(_normalize_member(m) for m in member.members),
        member.combination, member.repetition)


def normalize_schema(schema: DocumentSchema) -> DocumentSchema:
    """A schema with every content model in canonical form.

    The result accepts exactly the same documents (property-tested via
    the content-model matchers).
    """
    root_type = normalize_type(schema.root_element.type)
    root = ElementDeclaration(
        schema.root_element.name, root_type,
        schema.root_element.repetition, schema.root_element.nillable)
    complex_types = {qname: normalize_type(definition)
                     for qname, definition in schema.complex_types.items()}
    return DocumentSchema(root_element=root,
                          complex_types=complex_types,
                          target_namespace=schema.target_namespace,
                          registry=schema.registry)
