"""Static well-formedness diagnostics for document schemas.

Beyond the hard constraints enforced at construction time (distinct
names per group, the §3 type-usage requirement), this module reports
the *soft* problems a schema author would want flagged:

* UPA violations — content models that are not 1-unambiguous
  (detected with the Glushkov automaton of :mod:`repro.content`);
* unreachable particles — ``maxOccurs="0"`` declarations;
* degenerate groups — empty content with a meaningless combination or
  repetition factor (the paper notes these "do not make sense");
* unused named complex types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.ast import (
    AllGroup,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    SimpleContentType,
    TypeName,
    TypeRef,
)


@dataclass
class SchemaIssue:
    """One diagnostic: severity ("error"/"warning"), location, message."""

    severity: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.location}: {self.message}"


class SchemaLinter:
    """Collects diagnostics over one document schema."""

    def __init__(self, schema: DocumentSchema) -> None:
        self._schema = schema

    def lint(self) -> list[SchemaIssue]:
        self._issues: list[SchemaIssue] = []
        self._visited: set[int] = set()
        self._used_types: set[str] = set()
        self._check_element(self._schema.root_element,
                            self._schema.root_element.name)
        for qname, definition in self._schema.complex_types.items():
            if qname.local not in self._used_types:
                self._issues.append(SchemaIssue(
                    "warning", qname.lexical,
                    "named complex type is never used"))
            self._check_type(definition, qname.lexical)
        return self._issues

    # ------------------------------------------------------------------

    def _check_element(self, declaration: ElementDeclaration,
                       location: str) -> None:
        repetition = declaration.repetition
        if repetition.maximum == 0:
            self._issues.append(SchemaIssue(
                "warning", location,
                "maxOccurs=0 makes this declaration unusable"))
        if isinstance(declaration.type, TypeName):
            self._used_types.add(declaration.type.qname.local)
            return  # named types are checked once, at the top level
        self._check_type(declaration.type, location)

    def _check_type(self, definition: TypeRef, location: str) -> None:
        if id(definition) in self._visited:
            return
        self._visited.add(id(definition))
        if isinstance(definition, SimpleContentType):
            return
        if not isinstance(definition, ComplexContentType):
            return
        group = definition.group
        if group is None:
            return
        if isinstance(group, AllGroup):
            for member in group.members:
                self._check_element(member, f"{location}/{member.name}")
            return
        if group.empty_content:
            if group.repetition.as_pair() != (1, 1):
                self._issues.append(SchemaIssue(
                    "warning", location,
                    "repetition factor on empty content does not make "
                    "sense (paper, Section 2)"))
            return
        self._check_group(group, location)

    def _check_group(self, group: GroupDefinition, location: str) -> None:
        # Imported here: repro.content itself imports the schema AST,
        # so a module-level import would be circular.
        from repro.content.matcher import ContentModel
        model = ContentModel(group)
        automaton = model.automaton()
        if not automaton.is_deterministic():
            conflicts = automaton.competing_positions()
            names = sorted({name for name, _a, _b in conflicts})
            self._issues.append(SchemaIssue(
                "error", location,
                f"content model violates Unique Particle Attribution: "
                f"competing particles for {names}"))
        for member in group.members:
            if isinstance(member, ElementDeclaration):
                self._check_element(member, f"{location}/{member.name}")
            else:
                self._check_group(member, location)


def lint_schema(schema: DocumentSchema) -> list[SchemaIssue]:
    """All diagnostics for *schema* (errors first)."""
    issues = SchemaLinter(schema).lint()
    issues.sort(key=lambda issue: (issue.severity != "error",
                                   issue.location))
    return issues
