"""The formal type constructors of Section 2.

The paper phrases its abstract syntax with seven constructors over
syntactic domains::

    Seq(T)                ordered sets of T (empty included)
    FM(T1, T2)            finite mappings from T1 to T2 (ordered pairs)
    Union(T1, ..., Tn)    disjoint union
    Enumeration           enumeration of literals
    Pair(T1, T2)          pairs
    Interleave(T1, T2)    two-item sets in either order
    Tuple(T1, ..., Tn)    tuples

This module realizes them as *runtime-checkable descriptions*: each
constructor yields an object with a ``contains(value)`` predicate, so
tests can verify that the AST classes of :mod:`repro.schema.ast` really
inhabit the formal types the paper assigns to them.  Python's weak
typing is exactly the "formal fidelity" gap the reproduction notes call
out; these checkers close it at runtime.
"""

from __future__ import annotations

from typing import Callable

Check = Callable[[object], bool]


class FormalType:
    """A runtime-checkable description of a syntactic domain."""

    def __init__(self, name: str, check: Check) -> None:
        self.name = name
        self._check = check

    def contains(self, value: object) -> bool:
        """True iff *value* inhabits this formal type."""
        return self._check(value)

    def __repr__(self) -> str:
        return self.name


def Atom(name: str, predicate: Check) -> FormalType:
    """A base syntactic domain defined by a predicate."""
    return FormalType(name, predicate)


#: Natural numbers (including zero), the paper's ``NatNumber``.
NAT_NUMBER = Atom("NatNumber",
                  lambda v: isinstance(v, int)
                  and not isinstance(v, bool) and v >= 0)

#: Booleans, the paper's ``Boolean``.
BOOLEAN = Atom("Boolean", lambda v: isinstance(v, bool))

#: Names of document entities, the paper's ``Name``.
NAME = Atom("Name", lambda v: isinstance(v, str) and bool(v))


def Seq(item: FormalType) -> FormalType:
    """``Seq(T)`` — ordered sets of values of T, empty included."""
    def check(value: object) -> bool:
        if not isinstance(value, (tuple, list)):
            return False
        return all(item.contains(v) for v in value)
    return FormalType(f"Seq({item.name})", check)


def FM(key: FormalType, val: FormalType) -> FormalType:
    """``FM(T1, T2)`` — ordered finite mappings (distinct keys)."""
    def check(value: object) -> bool:
        if isinstance(value, dict):
            pairs = list(value.items())
        elif isinstance(value, (tuple, list)):
            pairs = [p for p in value]
            if not all(isinstance(p, tuple) and len(p) == 2 for p in pairs):
                return False
        else:
            return False
        keys = [k for k, _ in pairs]
        if len(set(keys)) != len(keys):
            return False
        return all(key.contains(k) and val.contains(v) for k, v in pairs)
    return FormalType(f"FM({key.name}, {val.name})", check)


def Union(*alternatives: FormalType) -> FormalType:
    """``Union(T1, ..., Tn)`` — a value of any one alternative."""
    names = ", ".join(a.name for a in alternatives)

    def check(value: object) -> bool:
        return any(a.contains(value) for a in alternatives)
    return FormalType(f"Union({names})", check)


def Enumeration(*literals: object) -> FormalType:
    """``Enumeration`` — one of an explicit set of literals."""
    allowed = tuple(literals)
    names = ", ".join(repr(lit) for lit in allowed)

    def check(value: object) -> bool:
        return value in allowed
    return FormalType(f"Enumeration({names})", check)


def Pair(first: FormalType, second: FormalType) -> FormalType:
    """``Pair(T1, T2)`` — ordered pairs."""
    def check(value: object) -> bool:
        return (isinstance(value, tuple) and len(value) == 2
                and first.contains(value[0]) and second.contains(value[1]))
    return FormalType(f"Pair({first.name}, {second.name})", check)


def Interleave(first: FormalType, second: FormalType) -> FormalType:
    """``Interleave(T1, T2)`` — a two-item set in either order."""
    def check(value: object) -> bool:
        if not isinstance(value, (tuple, list, frozenset, set)):
            return False
        items = list(value)
        if len(items) != 2:
            return False
        a, b = items
        return ((first.contains(a) and second.contains(b))
                or (first.contains(b) and second.contains(a)))
    return FormalType(f"Interleave({first.name}, {second.name})", check)


def Tuple(*components: FormalType) -> FormalType:
    """``Tuple(T1, ..., Tn)`` — fixed-arity tuples."""
    names = ", ".join(c.name for c in components)

    def check(value: object) -> bool:
        if not isinstance(value, tuple) or len(value) != len(components):
            return False
        return all(c.contains(v) for c, v in zip(components, value))
    return FormalType(f"Tuple({names})", check)


def Instance(cls: type, project: "Callable[[object], object] | None" = None,
             inner: FormalType | None = None) -> FormalType:
    """A domain inhabited by instances of a Python class.

    When *project* and *inner* are given, the projection of the instance
    must additionally inhabit *inner* — used to tie an AST dataclass to
    its formal tuple shape.
    """
    def check(value: object) -> bool:
        if not isinstance(value, cls):
            return False
        if project is not None and inner is not None:
            return inner.contains(project(value))
        return True
    return FormalType(cls.__name__, check)


def union_of_instances(*classes: type) -> FormalType:
    """Shorthand: ``Union(Instance(C1), ..., Instance(Cn))``."""
    return Union(*(Instance(cls) for cls in classes))
