"""repro — a reproduction of "A Formal Model of XML Schema" (ICDE 2005).

The package implements the paper's algebraic model of XML Schema on top of
the XQuery 1.0 / XPath 2.0 data model, plus the Sedna-style physical
representation it describes:

* :mod:`repro.xmlio` — raw XML parsing/serialization (substrate),
* :mod:`repro.xsdtypes` — the simple type system of Section 4,
* :mod:`repro.schema` — the abstract syntax of Sections 2-3,
* :mod:`repro.xdm` — the node classes and accessors of Section 5,
* :mod:`repro.algebra` — the state algebra and the Section 6.2
  conformance requirements,
* :mod:`repro.order` — document order (Section 7),
* :mod:`repro.mapping` — the mappings ``f``/``g`` and content equality
  of Section 8,
* :mod:`repro.storage` — descriptive schema, blocks, node descriptors
  and the numbering scheme of Section 9,
* :mod:`repro.numbering` — baseline numbering schemes,
* :mod:`repro.query` — a small path-query engine over both models,
* :mod:`repro.workloads` — the paper's examples and scalable generators.

The most common entry points are re-exported here.
"""

__version__ = "1.0.0"

from repro.database import DatabaseError, StoredDocument, XmlDatabase
from repro.errors import (
    ConformanceError,
    ReproError,
    SchemaError,
    ValidationError,
    XmlSyntaxError,
)

__all__ = [
    "ConformanceError",
    "DatabaseError",
    "StoredDocument",
    "XmlDatabase",
    "ReproError",
    "SchemaError",
    "ValidationError",
    "XmlSyntaxError",
    "__version__",
]
