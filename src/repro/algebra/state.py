"""The state algebra of Section 6.1.

Each database state is a many-sorted algebra: for every node class ``C``
there is a carrier set ``A_C`` of node identifiers, the carriers are
pairwise disjoint, and ``A_Node`` is their union.  Accessor functions
are defined on those carriers.

:class:`StateAlgebra` realizes this: it owns every node it creates,
allocates identifiers from a single counter (so the carriers are
disjoint by construction and membership is checkable), and exposes the
mutation operations — attaching children and attributes — that keep the
``parent``/``children``/``attributes`` accessor values mutually
consistent.  Documents evolve between states by these mutations, which
is exactly the paper's motivation for modelling the database (not a
single frozen document).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import AlgebraError
from repro.xmlio.qname import QName
from repro.xsdtypes.base import SimpleType
from repro.xdm.node import (
    AttributeNode,
    DocumentNode,
    ElementNode,
    Node,
    TextNode,
)

_KIND_CLASSES = {
    "document": DocumentNode,
    "element": ElementNode,
    "attribute": AttributeNode,
    "text": TextNode,
}


class StateAlgebra:
    """One database state: disjoint node carriers plus accessors."""

    def __init__(self) -> None:
        self._next_identifier = 0
        self._carriers: dict[str, list[Node]] = {
            kind: [] for kind in _KIND_CLASSES}

    # -- carriers ---------------------------------------------------------

    def carrier(self, kind: str) -> tuple[Node, ...]:
        """The carrier set ``A_kind`` (e.g. ``A_Element``)."""
        try:
            return tuple(self._carriers[kind])
        except KeyError:
            raise AlgebraError(f"unknown node sort {kind!r}") from None

    def nodes(self) -> Iterator[Node]:
        """``A_Node``: the union of all carriers."""
        for carrier in self._carriers.values():
            yield from carrier

    def node_count(self) -> int:
        return sum(len(carrier) for carrier in self._carriers.values())

    def owns(self, node: Node) -> bool:
        """True iff *node* was created by this algebra."""
        return node.algebra is self

    # -- node construction ---------------------------------------------------

    def _allocate(self) -> int:
        identifier = self._next_identifier
        self._next_identifier += 1
        return identifier

    def create_document(self, base_uri: str | None = None) -> DocumentNode:
        """A new document node (Section 6.1: name/parent/type/attributes/
        nilled are empty by construction)."""
        node = DocumentNode(self, self._allocate())
        node._base_uri = base_uri
        self._carriers["document"].append(node)
        return node

    def create_element(self, name: QName) -> ElementNode:
        node = ElementNode(self, self._allocate(), name)
        self._carriers["element"].append(node)
        return node

    def create_attribute(self, name: QName, value: str) -> AttributeNode:
        node = AttributeNode(self, self._allocate(), name, value)
        self._carriers["attribute"].append(node)
        return node

    def create_text(self, value: str) -> TextNode:
        node = TextNode(self, self._allocate(), value)
        self._carriers["text"].append(node)
        return node

    # -- structural mutation --------------------------------------------------

    def _check_adoptable(self, parent: Node, child: Node) -> None:
        if not self.owns(parent) or not self.owns(child):
            raise AlgebraError("nodes belong to a different state algebra")
        if child.parent_or_none() is not None:
            raise AlgebraError(f"{child!r} already has a parent")
        if child is parent:
            raise AlgebraError("a node cannot be its own child")

    def append_child(self, parent: Node, child: Node) -> None:
        """Attach *child* as the last child of *parent*.

        Only document and element nodes may have children; a document
        node may have a single element child (Section 3); attribute
        nodes are attached with :meth:`attach_attribute` instead.
        """
        self.insert_child(parent, len(self._children_list(parent)), child)

    def insert_child(self, parent: Node, index: int, child: Node) -> None:
        """Attach *child* at *index* among *parent*'s children."""
        self._check_adoptable(parent, child)
        if isinstance(child, AttributeNode):
            raise AlgebraError(
                "attributes are attached with attach_attribute")
        if isinstance(child, DocumentNode):
            raise AlgebraError("a document node cannot be a child")
        children = self._children_list(parent)
        if isinstance(parent, DocumentNode):
            if not isinstance(child, ElementNode):
                raise AlgebraError(
                    "the document node's child must be an element "
                    "(Section 3 single-root model)")
            if any(isinstance(c, ElementNode) for c in children):
                raise AlgebraError(
                    "the document node already has an element child")
        children.insert(index, child)
        child._parent = parent
        if child._base_uri is None:
            child._base_uri = parent._base_uri

    def remove_child(self, parent: Node, child: Node) -> None:
        """Detach *child* from *parent*."""
        children = self._children_list(parent)
        try:
            children.remove(child)
        except ValueError:
            raise AlgebraError(f"{child!r} is not a child of {parent!r}") \
                from None
        child._parent = None

    def attach_attribute(self, element: ElementNode,
                         attribute: AttributeNode) -> None:
        """Attach *attribute* to *element* (appended to the attribute
        sequence)."""
        self._check_adoptable(element, attribute)
        if not isinstance(element, ElementNode):
            raise AlgebraError("only elements carry attributes")
        names = {a.name for a in element._attributes}
        if attribute.name in names:
            raise AlgebraError(
                f"duplicate attribute {attribute.name.lexical}")
        element._attributes.append(attribute)
        attribute._parent = element
        if attribute._base_uri is None:
            attribute._base_uri = element._base_uri

    def set_attribute_value(self, attribute: AttributeNode,
                            value: str) -> None:
        """Replace the string content of an attached attribute in place
        (the update form of ``set_attribute``: same node identifier,
        new ``string-value``)."""
        if not self.owns(attribute):
            raise AlgebraError("attribute belongs to a different algebra")
        attribute._value = value

    @staticmethod
    def _children_list(parent: Node) -> list[Node]:
        if isinstance(parent, DocumentNode):
            return parent._children
        if isinstance(parent, ElementNode):
            return parent._children
        raise AlgebraError(
            f"{parent!r} cannot have children (kind {parent.kind!r})")

    # -- typing annotations --------------------------------------------------

    def annotate_element(self, element: ElementNode,
                         type_name: QName,
                         simple_type: SimpleType | None = None,
                         nilled: bool = False) -> None:
        """Set the ``type`` and ``nilled`` accessor values of an element."""
        if not self.owns(element):
            raise AlgebraError("element belongs to a different algebra")
        element._type_name = type_name
        element._simple_type = simple_type
        element._nilled = nilled

    def annotate_attribute(self, attribute: AttributeNode,
                           type_name: QName,
                           simple_type: SimpleType | None = None) -> None:
        """Set the ``type`` accessor value of an attribute."""
        if not self.owns(attribute):
            raise AlgebraError("attribute belongs to a different algebra")
        attribute._type_name = type_name
        attribute._simple_type = simple_type

    # -- invariants --------------------------------------------------------

    def check_sort_disjointness(self) -> None:
        """Verify the carriers are pairwise disjoint (they are by
        construction; this re-checks the invariant for tests)."""
        seen: dict[int, str] = {}
        for kind, carrier in self._carriers.items():
            for node in carrier:
                if node.identifier in seen:
                    raise AlgebraError(
                        f"identifier {node.identifier} occurs in both "
                        f"{seen[node.identifier]} and {kind}")
                if not isinstance(node, _KIND_CLASSES[kind]):
                    raise AlgebraError(
                        f"node {node!r} is in the wrong carrier {kind}")
                seen[node.identifier] = kind

    def check_parent_child_consistency(self) -> None:
        """Verify parent/children/attributes accessors agree."""
        for node in self.nodes():
            for child in node.children():
                if child.parent_or_none() is not node:
                    raise AlgebraError(
                        f"{child!r} is a child of {node!r} but its parent "
                        f"accessor says {child.parent_or_none()!r}")
            for attribute in node.attributes():
                if attribute.parent_or_none() is not node:
                    raise AlgebraError(
                        f"{attribute!r} hangs off {node!r} but its parent "
                        f"accessor disagrees")

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{kind}:{len(carrier)}"
            for kind, carrier in self._carriers.items())
        return f"StateAlgebra({sizes})"


def build_element_tree(algebra: StateAlgebra, spec: object) -> ElementNode:
    """Build a subtree from a nested ``(name, attrs, children)`` spec.

    A convenience for tests and examples: *spec* is either a string
    (a text node is created) or a tuple ``(name, {attr: value},
    [child_spec, ...])``.
    """
    if isinstance(spec, str):
        raise AlgebraError("the root of a tree spec must be an element")
    return _build_spec(algebra, spec)


def _build_spec(algebra: StateAlgebra, spec) -> ElementNode:
    name, attrs, children = spec
    element = algebra.create_element(
        name if isinstance(name, QName) else QName("", name))
    for attr_name, value in attrs.items():
        attribute = algebra.create_attribute(
            attr_name if isinstance(attr_name, QName)
            else QName("", attr_name), value)
        algebra.attach_attribute(element, attribute)
    for child_spec in children:
        if isinstance(child_spec, str):
            algebra.append_child(element, algebra.create_text(child_spec))
        else:
            algebra.append_child(element, _build_spec(algebra, child_spec))
    return element
