"""Node identity constraints: ID uniqueness and IDREF resolution.

The paper's related-work section faults MSL for not covering "node
identity constraints"; the algebraic model supports them naturally
because every attribute carries a type annotation.  This module checks
the two classic constraints over a document tree:

* every value typed ``xs:ID`` is unique within the document;
* every value typed ``xs:IDREF`` (or item of ``xs:IDREFS``) matches
  some ID in the document.

The checks operate purely on accessor values (type annotations and
typed values), in keeping with the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xdm.node import AttributeNode, ElementNode, Node
from repro.xsdtypes.registry import BUILTINS
from repro.xsdtypes.base import SimpleType

_ID_TYPE = BUILTINS.simple("ID")
_IDREF_TYPE = BUILTINS.simple("IDREF")
_IDREFS_TYPE = BUILTINS.simple("IDREFS")


@dataclass
class IdentityViolation:
    """One violated identity constraint."""

    kind: str      # "duplicate-id" | "dangling-idref"
    value: str
    path: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.value!r} at {self.path}"


def _typed_as(node: Node, target: SimpleType) -> bool:
    """True iff the node's annotated simple type derives from *target*."""
    simple = getattr(node, "_simple_type", None)
    return simple is not None and simple.is_derived_from(target)


def _walk(node: Node, path: str):
    yield node, path
    counters: dict[str, int] = {}
    for attribute in node.attributes():
        name = attribute.node_name().head().local
        yield attribute, f"{path}/@{name}"
    for child in node.children():
        if isinstance(child, ElementNode):
            local = child.name.local
            counters[local] = counters.get(local, 0) + 1
            yield from _walk(child, f"{path}/{local}[{counters[local]}]")


def check_identity(document: Node) -> list[IdentityViolation]:
    """All ID/IDREF violations in the tree rooted at *document*."""
    ids: dict[str, str] = {}
    violations: list[IdentityViolation] = []
    references: list[tuple[str, str]] = []

    for node, path in _walk(document, ""):
        if not isinstance(node, (AttributeNode, ElementNode)):
            continue
        if _typed_as(node, _ID_TYPE):
            value = node.string_value().strip()
            if value in ids:
                violations.append(IdentityViolation(
                    "duplicate-id", value, path))
            else:
                ids[value] = path
        elif _typed_as(node, _IDREF_TYPE):
            references.append((node.string_value().strip(), path))
        elif _typed_as(node, _IDREFS_TYPE):
            for token in node.string_value().split():
                references.append((token, path))

    for value, path in references:
        if value not in ids:
            violations.append(IdentityViolation(
                "dangling-idref", value, path))
    return violations


def collect_ids(document: Node) -> dict[str, str]:
    """All declared IDs mapped to the path of their carrier."""
    ids: dict[str, str] = {}
    for node, path in _walk(document, ""):
        if isinstance(node, (AttributeNode, ElementNode)) and \
                _typed_as(node, _ID_TYPE):
            ids.setdefault(node.string_value().strip(), path)
    return ids
