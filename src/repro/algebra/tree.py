"""The ``Tree`` data type of Section 6.1 with ``root`` and ``roots``.

The paper defines trees inductively from nodes whose ``children`` /
``attributes`` and ``parent`` accessors agree.  Because those accessors
already live on the nodes, a tree value is determined by its root node;
:class:`Tree` wraps a root and offers the traversals the rest of the
model needs, and :func:`is_well_formed_tree` re-checks the inductive
conditions explicitly.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import AlgebraError
from repro.xdm.node import AttributeNode, DocumentNode, ElementNode, Node
from repro.xsdtypes.sequence import Sequence


class Tree:
    """A tree value: a root node plus the subtree it dominates."""

    __slots__ = ("_root",)

    def __init__(self, root: Node) -> None:
        if isinstance(root, AttributeNode):
            raise AlgebraError("an attribute node cannot root a tree")
        self._root = root

    @property
    def root_node(self) -> Node:
        return self._root

    def nodes(self) -> Iterator[Node]:
        """All nodes of the tree in document order (Section 7):
        each element before its attributes, attributes before the
        element's children."""
        yield from _walk(self._root)

    def size(self) -> int:
        return sum(1 for _ in self.nodes())

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (root alone = 1)."""
        def measure(node: Node) -> int:
            children = list(node.children())
            if not children:
                return 1
            return 1 + max(measure(child) for child in children)
        return measure(self._root)

    def __iter__(self) -> Iterator[Node]:
        return self.nodes()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return self._root is other._root

    def __hash__(self) -> int:
        return hash(("Tree", self._root))

    def __repr__(self) -> str:
        return f"Tree({self._root!r})"


def _walk(node: Node) -> Iterator[Node]:
    yield node
    for attribute in node.attributes():
        yield attribute
    for child in node.children():
        yield from _walk(child)


def root(tree: Tree) -> Node:
    """The paper's ``root : Tree -> Node`` function."""
    return tree.root_node


def roots(trees: "Sequence[Tree] | list[Tree] | tuple[Tree, ...]"
          ) -> Sequence[Node]:
    """The paper's ``roots : Seq(Tree) -> Seq(Node)`` function."""
    return Sequence(tree.root_node for tree in trees)


def subtree(node: Node) -> Tree:
    """The tree rooted at *node*."""
    return Tree(node)


def is_well_formed_tree(tree: Tree) -> bool:
    """Re-check the inductive tree conditions of Section 6.1.

    Every child's ``parent`` accessor must point back at its parent,
    ditto for attributes, and no node may be reachable twice.
    """
    seen: set[int] = set()

    def check(node: Node) -> bool:
        key = node.identifier
        if key in seen:
            return False
        seen.add(key)
        for child in node.children():
            if child.parent_or_none() is not node:
                return False
            if not check(child):
                return False
        for attribute in node.attributes():
            if attribute.parent_or_none() is not node:
                return False
            if attribute.identifier in seen:
                return False
            seen.add(attribute.identifier)
        return True

    return check(tree.root_node)


def pretty(tree: Tree, label: "Callable[[Node], str] | None" = None) -> str:
    """An indented rendering of the tree, for debugging and examples."""
    def default_label(node: Node) -> str:
        names = node.node_name()
        name = names.head().lexical if names else ""
        if node.node_kind() == "text":
            return f"text {node.string_value()!r}"
        if node.node_kind() == "attribute":
            return f"@{name}={node.string_value()!r}"
        return f"{node.node_kind()} {name}".rstrip()

    label = label or default_label
    lines: list[str] = []

    def emit(node: Node, indent: int) -> None:
        lines.append("  " * indent + label(node))
        for attribute in node.attributes():
            lines.append("  " * (indent + 1) + label(attribute))
        for child in node.children():
            emit(child, indent + 1)

    emit(tree.root_node, 0)
    return "\n".join(lines)


def document_tree(document: DocumentNode) -> Tree:
    """The tree of a complete document (root must be a document node)."""
    if not isinstance(document, DocumentNode):
        raise AlgebraError("document_tree needs a document node")
    return Tree(document)


def element_subtrees(element: ElementNode) -> list[Tree]:
    """The sequence of trees rooted at an element's element children —
    the ``ss`` sequences of Section 6.2 item 5.4.2."""
    return [Tree(child) for child in element.element_children()]
