"""The Section 6.2 conformance requirements, checked item by item.

Given a document — presented either as a Section 5/6 node tree or as
any other :class:`~repro.xdm.store.NodeStore` model (e.g. the Sedna
storage of Section 9) — and a document schema,
:class:`ConformanceChecker` verifies every numbered requirement of
Section 6.2 and reports violations tagged with the paper's item
numbers (``"1"`` through ``"7"``, with sub-items like ``"5.3.1"``).

Every check reads the document exclusively through the ten accessors,
which is what lets one checker serve both representations: the paper
states the requirements over accessor values, not over node classes.

This is deliberately separate from the mapping ``f``
(:mod:`repro.mapping.doc_to_tree`): ``f`` *constructs* conforming
trees, the checker *verifies* arbitrary trees — including hand-built
or mutated ones — against the requirements.  The test suite uses the
checker as the oracle for ``f`` and for the instance builder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import ConformanceError
from repro.xdm.node import (
    ANY_TYPE_NAME,
    UNTYPED_ATOMIC_NAME,
    DocumentNode,
    Node,
)
from repro.xdm.store import NodeStore, Ref, as_node_store
from repro.xsdtypes.base import SimpleType
from repro.content.matcher import ContentModel
from repro.schema.ast import (
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    SimpleContentType,
    TypeName,
)


@dataclass
class Violation:
    """One violated requirement: the paper's item number, a location
    path and a human-readable message."""

    item: str
    path: str
    message: str

    def __str__(self) -> str:
        return f"[item {self.item}] {self.path}: {self.message}"

    def as_error(self) -> ConformanceError:
        return ConformanceError(self.item, self.message, self.path)


class ConformanceChecker:
    """Checks documents against one schema's requirements, through the
    accessor protocol — any :class:`NodeStore` model can be checked."""

    def __init__(self, schema: DocumentSchema) -> None:
        self._schema = schema
        self._content_models: dict[int, ContentModel] = {}

    # -- public API ----------------------------------------------------------

    def check(self, document: "DocumentNode | Node | NodeStore"
              ) -> list[Violation]:
        """All violations found (empty list = the tree is an S-tree).

        *document* is a tree node (the historical API) or any
        ``NodeStore`` (checked from its root).
        """
        if isinstance(document, NodeStore):
            return self.check_store(document)
        return self.check_store(as_node_store(document), document)

    def check_store(self, store: NodeStore,
                    root: Ref = None) -> list[Violation]:
        """All violations of the document presented by *store*."""
        self._store = store
        self._violations: list[Violation] = []
        self._seen: set = set()
        if root is None:
            root = store.root()
        if obs.ENABLED:
            obs.REGISTRY.counter("conformance.documents_checked").inc()
            with obs.TRACER.span("conformance.check"):
                self._check_document(root)
                self._check_no_other_nodes(root)
            if self._violations:
                obs.REGISTRY.counter("conformance.documents_failed").inc()
        else:
            self._check_document(root)
            self._check_no_other_nodes(root)
        return self._violations

    def conforms(self, document: "DocumentNode | NodeStore") -> bool:
        return not self.check(document)

    def assert_conforms(self,
                        document: "DocumentNode | NodeStore") -> None:
        violations = self.check(document)
        if violations:
            raise violations[0].as_error()

    # -- items 1-4 -------------------------------------------------------

    def _report(self, item: str, path: str, message: str) -> None:
        self._violations.append(Violation(item, path, message))
        if obs.ENABLED:
            # Failure sites keyed by the paper's top-level item number;
            # the trace event keeps the exact sub-item and location.
            top = item.split(".", 1)[0]
            obs.REGISTRY.counter(
                f"conformance.violations.item{top}").inc()
            obs.TRACER.event("conformance.violation", item=item,
                             path=path)

    def _count_check(self, item: str) -> None:
        """Count one evaluation of a Section 6.2 requirement."""
        if obs.ENABLED:
            obs.REGISTRY.counter(f"conformance.checks.item{item}").inc()

    def _mark_seen(self, ref: Ref) -> None:
        self._seen.add(self._store.node_key(ref))

    def _check_document(self, document: Ref) -> None:
        store = self._store
        path = "/"
        self._count_check("1")
        if store.node_kind(document) != "document":
            self._report("1", path, "the tree root is not a document node")
            return
        self._mark_seen(document)
        # Item 1: fixed accessors of the document node.
        if store.node_name(document) is not None:
            self._report("1", path,
                         "document node's node_name must be empty")
        if store.type_name(document) is not None:
            self._report("1", path, "document node's type must be empty")
        if store.attributes(document):
            self._report("1", path,
                         "document node's attributes must be empty")
        if store.nilled(document) is not None:
            self._report("1", path, "document node's nilled must be empty")
        if store.parent(document) is not None:
            self._report("1", path, "document node's parent must be empty")
        children = store.children(document)
        # Item 3: exactly one element child.
        self._count_check("3")
        elements = [c for c in children
                    if store.node_kind(c) == "element"]
        if len(children) != 1 or len(elements) != 1:
            self._report(
                "3", path,
                f"document node must have exactly one element child, "
                f"found {len(children)} children")
            return
        (end,) = elements
        # Item 1: string value of the document = string value of child.
        if store.string_value(document) != store.string_value(end):
            self._report(
                "1", path,
                "document string-value differs from its child's")
        if not self._same_node(store.parent(end), document):
            self._report("3", path, "child's parent accessor is wrong")
        declaration = self._schema.root_element
        self._check_element(end, declaration, f"/{declaration.name}")

    def _same_node(self, first: "Ref | None",
                   second: "Ref | None") -> bool:
        if first is None or second is None:
            return first is None and second is None
        store = self._store
        return store.node_key(first) == store.node_key(second)

    def _check_element(self, element: Ref,
                       declaration: ElementDeclaration, path: str) -> None:
        store = self._store
        self._count_check("4")
        if store.node_kind(element) != "element":
            self._report("4", path, "expected an element node")
            return
        self._mark_seen(element)
        # Item 4: name and type accessor values.
        name = store.node_name(element)
        if name is None or name.local != declaration.name:
            self._report(
                "4", path,
                f"node-name {name!r} does not match declaration "
                f"{declaration.name!r}")
        expected_type = (declaration.type.qname
                         if isinstance(declaration.type, TypeName)
                         else ANY_TYPE_NAME)
        type_name = store.type_name(element)
        if type_name != expected_type:
            self._report(
                "4", path,
                f"type accessor {type_name!r} must be "
                f"{expected_type.lexical}")
        self._check_base_uri(element, path, item="4")

        resolved = self._schema.resolve(declaration.type)
        nilled = bool(store.nilled(element))

        if not declaration.nillable:
            # Item 5: nid = false forces nilled(end) = false.
            self._count_check("5")
            if nilled:
                self._report(
                    "5", path,
                    "nilled is true but the declaration is not nillable")
                return
            self._check_content(element, resolved, path)
        else:
            # Item 6.
            self._count_check("6")
            if nilled:
                if store.children(element):
                    self._report(
                        "6", path, "a nilled element must have no children")
                if isinstance(resolved, (SimpleContentType,
                                         ComplexContentType)):
                    self._check_attributes(element, resolved, path)
                elif store.attributes(element):
                    self._report(
                        "6.1", path,
                        "a nilled simple-typed element has attributes")
            else:
                self._check_content(element, resolved, path)

    def _check_base_uri(self, ref: Ref, path: str, item: str) -> None:
        store = self._store
        parent = store.parent(ref)
        if parent is None:
            return
        if store.base_uri(ref) != store.base_uri(parent):
            self._report(
                item, path,
                "base-uri must be inherited from the parent")

    # -- item 5 dispatch -----------------------------------------------------

    def _check_content(self, element: Ref, resolved: object,
                       path: str) -> None:
        if isinstance(resolved, SimpleType):
            if self._store.attributes(element):
                self._report(
                    "5.1", path,
                    "a simple-typed element must not have attributes")
            self._check_simple_value(element, resolved, path)
        elif isinstance(resolved, SimpleContentType):
            base = self._schema.resolve(resolved.base)
            self._check_attributes(element, resolved, path)
            if isinstance(base, SimpleType):
                self._check_simple_value(element, base, path)
            else:
                self._report("5.2", path,
                             "simple content base is not a simple type")
        elif isinstance(resolved, ComplexContentType):
            self._check_attributes(element, resolved, path)
            self._check_complex_children(element, resolved, path)
        else:  # pragma: no cover - resolve() covers all cases
            self._report("4", path, f"unknown resolved type {resolved!r}")

    # -- item 5.1.1 ---------------------------------------------------------

    def _check_simple_value(self, element: Ref,
                            simple: SimpleType, path: str) -> None:
        store = self._store
        children = store.children(element)
        if len(children) != 1 or store.node_kind(children[0]) != "text":
            self._report(
                "5.1.1", path,
                "a simple-typed element must have exactly one text child")
            return
        text = children[0]
        self._mark_seen(text)
        self._check_text_node(text, element, path)
        if not simple.validate(store.string_value(text)):
            self._report(
                "5.1.1", path,
                f"text {store.string_value(text)!r} is not a valid "
                f"{simple.type_name}")

    def _check_text_node(self, text: Ref, parent: Ref,
                         path: str) -> None:
        store = self._store
        if not self._same_node(store.parent(text), parent):
            self._report("5.1.1", path, "text node's parent is wrong")
        if store.type_name(text) != UNTYPED_ATOMIC_NAME:
            self._report(
                "5.1.1", path,
                "text node's type must be xdt:untypedAtomic")
        self._check_base_uri(text, path, item="5.1.1")

    # -- item 5.3.1 ---------------------------------------------------------

    def _check_attributes(
            self, element: Ref,
            definition: "SimpleContentType | ComplexContentType",
            path: str) -> None:
        store = self._store
        declared = dict(definition.attributes.items)
        present: dict[str, Ref] = {}
        for attribute in store.attributes(element):
            if store.node_kind(attribute) != "attribute":
                self._report(
                    "5.3.1", path,
                    f"non-attribute node {attribute!r} in attributes()")
                continue
            self._mark_seen(attribute)
            name = store.node_name(attribute)
            local = name.local if name is not None else ""
            if local in present:
                self._report("5.3.1", path,
                             f"duplicate attribute {local!r}")
                continue
            present[local] = attribute
        # The automorphism σ: same name sets, order free.
        if set(present) != set(declared):
            self._report(
                "5.3.1", path,
                f"attribute names {sorted(present)} do not match the "
                f"declared {sorted(declared)}")
            return
        for local, attribute in present.items():
            type_ref = declared[local]
            if not self._same_node(store.parent(attribute), element):
                self._report("5.3.1", path,
                             f"attribute {local!r} has the wrong parent")
            self._check_base_uri(attribute, path, item="5.3.1")
            expected_type = (type_ref.qname
                             if isinstance(type_ref, TypeName)
                             else ANY_TYPE_NAME)
            type_name = store.type_name(attribute)
            if type_name != expected_type:
                self._report(
                    "5.3.1", path,
                    f"attribute {local!r} type accessor must be "
                    f"{expected_type.lexical}")
            simple = self._schema.resolve(type_ref)
            if isinstance(simple, SimpleType) and not simple.validate(
                    store.string_value(attribute)):
                self._report(
                    "5.3.1", path,
                    f"attribute {local}={store.string_value(attribute)!r} "
                    f"is not a valid {simple.type_name}")

    # -- items 5.4.x ----------------------------------------------------------

    def _content_model(self, group: GroupDefinition) -> ContentModel:
        model = self._content_models.get(id(group))
        if model is None:
            model = ContentModel(group)
            self._content_models[id(group)] = model
        return model

    def _check_complex_children(self, element: Ref,
                                definition: ComplexContentType,
                                path: str) -> None:
        store = self._store
        children = store.children(element)
        texts = [c for c in children if store.node_kind(c) == "text"]
        elements = [c for c in children
                    if store.node_kind(c) == "element"]
        strays = [c for c in children
                  if store.node_kind(c) not in ("text", "element")]
        for stray in strays:
            self._report(
                "7", path, f"unexpected node {stray!r} among children")

        group = definition.group
        if group is None or group.empty_content:
            # Item 5.4.1.
            if elements:
                self._report(
                    "5.4.1", path,
                    "element children where the type has empty content")
            if definition.mixed:
                # 5.4.1.1: () or a single text node.
                if len(texts) > 1:
                    self._report(
                        "5.4.1.1", path,
                        "empty mixed content allows at most one text node")
                for text in texts:
                    self._mark_seen(text)
                    self._check_text_node(text, element, path)
            elif texts:
                # 5.4.1.2.
                self._report(
                    "5.4.1.2", path,
                    "text content where mixed is false")
            return

        # Item 5.4.2: children are roots of a tree sequence.
        if definition.mixed:
            # 5.4.2.2: no two adjacent text nodes.
            for first, second in zip(children, children[1:]):
                if store.node_kind(first) == "text" and \
                        store.node_kind(second) == "text":
                    self._report(
                        "5.4.2.2", path, "adjacent text nodes")
            for text in texts:
                self._mark_seen(text)
                self._check_text_node(text, element, path)
        elif texts:
            # 5.4.2.1: children(end) = roots(ss) — no text at all.
            self._report(
                "5.4.2.1", path,
                "text children where mixed is false")

        # Item 5.4.2.3: the ss sequence decomposes per the group.
        model = self._content_model(group)
        names = [store.local_name(e) for e in elements]
        if not model.matches(names):
            self._report("5.4.2.3", path, model.explain(names))
        counters: dict[str, int] = {}
        for child in elements:
            local = store.local_name(child)
            counters[local] = counters.get(local, 0) + 1
            child_path = f"{path}/{local}[{counters[local]}]"
            if not model.knows(local):
                continue  # already reported by matches()
            declaration = model.declaration_for(local)
            # Requirements "starting from item 4" apply recursively.
            self._check_element(child, declaration, child_path)

    # -- item 7 ------------------------------------------------------------

    def _check_no_other_nodes(self, document: Ref) -> None:
        """Item 7: every node reachable in the tree must be one the
        requirements demanded (i.e. visited by the checks above)."""
        if self._violations:
            # An invalid tree already fails; unvisited nodes below the
            # failure point would only produce noise.
            return
        self._count_check("7")
        store = self._store

        def walk(ref: Ref, path: str) -> None:
            if store.node_key(ref) not in self._seen:
                self._report(
                    "7", path,
                    f"node {ref!r} is not required by any requirement")
            for attribute in store.attributes(ref):
                if store.node_key(attribute) not in self._seen:
                    self._report(
                        "7", path, f"extra attribute node {attribute!r}")
            for index, child in enumerate(store.children(ref), start=1):
                walk(child, f"{path}/*[{index}]")

        walk(document, "")


def check_conformance(document: "DocumentNode | NodeStore",
                      schema: DocumentSchema) -> list[Violation]:
    """Convenience wrapper: all Section 6.2 violations of *document*
    (a tree node or any ``NodeStore``)."""
    return ConformanceChecker(schema).check(document)


def conforms(document: "DocumentNode | NodeStore",
             schema: DocumentSchema) -> bool:
    """True iff *document* is an S-tree for *schema*."""
    return ConformanceChecker(schema).conforms(document)
