"""Random generation of schema-conforming document trees.

:class:`InstanceBuilder` walks a document schema and builds an S-tree
in a state algebra, choosing occurrence counts, choice branches, text
values and nil flags pseudo-randomly.  The §6.2 conformance checker is
the oracle: property tests assert that everything the builder produces
conforms, and that ``g``/``f`` round-trip it.
"""

from __future__ import annotations

import random
import string

from repro.errors import ReproError
from repro.xmlio.qname import QName
from repro.xdm.node import ANY_TYPE_NAME, DocumentNode, ElementNode
from repro.xsdtypes.base import (
    AtomicType,
    ListType,
    SimpleType,
    UnionType,
)
from repro.xsdtypes.facets import (
    EnumerationFacet,
    MaxInclusiveFacet,
    MinInclusiveFacet,
)
from repro.algebra.state import StateAlgebra
from repro.schema.ast import (
    AllGroup,
    CombinationFactor,
    ComplexContentType,
    DocumentSchema,
    ElementDeclaration,
    GroupDefinition,
    RepetitionFactor,
    SimpleContentType,
    TypeName,
)

_WORDS = ("data", "value", "alpha", "beta", "gamma", "delta", "omega",
          "node", "tree", "model", "schema", "algebra")


class ValueSampler:
    """Generates valid literals for simple types."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def sample(self, simple: SimpleType, attempts: int = 32) -> str:
        """A literal in the lexical space of *simple*.

        Raises :class:`ReproError` if no valid literal is found within
        *attempts* tries (e.g. for unsatisfiable facet combinations).
        """
        for _ in range(attempts):
            literal = self._candidate(simple)
            if literal is not None and simple.validate(literal):
                return literal
        raise ReproError(
            f"could not generate a value for {simple.type_name}")

    # ------------------------------------------------------------------

    def _candidate(self, simple: SimpleType) -> str | None:
        enum = self._enumeration_of(simple)
        if enum is not None:
            return enum
        if isinstance(simple, ListType):
            count = self._rng.randint(1, 4)
            return " ".join(self.sample(simple.item_type)
                            for _ in range(count))
        if isinstance(simple, UnionType):
            member = self._rng.choice(simple.member_types)
            return self.sample(member)
        if isinstance(simple, AtomicType):
            return self._atomic_candidate(simple)
        return None

    def _enumeration_of(self, simple: SimpleType) -> str | None:
        for step in simple.restriction_chain():
            for facet in step.facets:
                if isinstance(facet, EnumerationFacet):
                    value = self._rng.choice(facet.values)
                    return simple.canonical(value)
        return None

    def _integer_bounds(self, simple: SimpleType) -> tuple[int, int]:
        low, high = -10_000, 10_000
        for step in simple.restriction_chain():
            for facet in step.facets:
                if isinstance(facet, MinInclusiveFacet) and isinstance(
                        facet.bound, int):
                    low = max(low, facet.bound)
                if isinstance(facet, MaxInclusiveFacet) and isinstance(
                        facet.bound, int):
                    high = min(high, facet.bound)
        if low > high:
            low = high
        return low, high

    def _atomic_candidate(self, simple: AtomicType) -> str:
        primitive = simple.primitive_type()
        local = primitive.name.local if primitive and primitive.name else \
            "string"
        rng = self._rng
        if local == "string":
            words = rng.sample(_WORDS, k=rng.randint(1, 3))
            return " ".join(words)
        if local == "boolean":
            return rng.choice(("true", "false"))
        if local == "decimal":
            low, high = self._integer_bounds(simple)
            whole = rng.randint(low, high)
            return f"{whole}.{rng.randint(0, 99):02d}" \
                if rng.random() < 0.5 else str(whole)
        if local in ("float", "double"):
            return f"{rng.uniform(-1000, 1000):.3f}"
        if local == "duration":
            return f"P{rng.randint(0, 20)}Y{rng.randint(0, 11)}M"
        if local == "dateTime":
            return (f"{rng.randint(1970, 2030):04d}-"
                    f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
                    f"T{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}"
                    f":{rng.randint(0, 59):02d}Z")
        if local == "date":
            return (f"{rng.randint(1970, 2030):04d}-"
                    f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")
        if local == "time":
            return (f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}"
                    f":{rng.randint(0, 59):02d}")
        if local == "gYearMonth":
            return f"{rng.randint(1970, 2030):04d}-{rng.randint(1, 12):02d}"
        if local == "gYear":
            return f"{rng.randint(1970, 2030):04d}"
        if local == "gMonthDay":
            return f"--{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
        if local == "gDay":
            return f"---{rng.randint(1, 28):02d}"
        if local == "gMonth":
            return f"--{rng.randint(1, 12):02d}"
        if local == "hexBinary":
            return "".join(rng.choice("0123456789ABCDEF")
                           for _ in range(2 * rng.randint(1, 6)))
        if local == "base64Binary":
            return "QUJD"  # "ABC"
        if local == "anyURI":
            return f"http://example.org/{rng.choice(_WORDS)}"
        if local in ("QName", "NOTATION"):
            return rng.choice(_WORDS)
        # Fallback: a plain NCName-ish token works for the name types.
        return "".join(rng.choice(string.ascii_lowercase)
                       for _ in range(6))


class InstanceBuilder:
    """Builds random S-trees for a schema."""

    def __init__(self, schema: DocumentSchema,
                 seed: int | random.Random = 0,
                 max_occurs_cap: int = 3,
                 nil_probability: float = 0.3,
                 mixed_text_probability: float = 0.5) -> None:
        self._schema = schema
        self._rng = (seed if isinstance(seed, random.Random)
                     else random.Random(seed))
        self._sampler = ValueSampler(self._rng)
        self._cap = max_occurs_cap
        self._nil_probability = nil_probability
        self._mixed_text_probability = mixed_text_probability

    def build(self, algebra: StateAlgebra | None = None) -> DocumentNode:
        """One random conforming document tree."""
        algebra = algebra or StateAlgebra()
        document = algebra.create_document()
        root = self._build_element(algebra, self._schema.root_element)
        algebra.append_child(document, root)
        return document

    # ------------------------------------------------------------------

    def _pick_count(self, repetition: RepetitionFactor) -> int:
        low = repetition.minimum
        high = (low + self._cap if repetition.unbounded
                else min(int(repetition.maximum), low + self._cap))
        return self._rng.randint(low, max(low, high))

    def _build_element(self, algebra: StateAlgebra,
                       declaration: ElementDeclaration) -> ElementNode:
        element = algebra.create_element(QName(
            self._element_namespace(), declaration.name))
        resolved = self._schema.resolve(declaration.type)
        type_name = (declaration.type.qname
                     if isinstance(declaration.type, TypeName)
                     else ANY_TYPE_NAME)

        if declaration.nillable and self._rng.random() < \
                self._nil_probability:
            simple = resolved if isinstance(resolved, SimpleType) else (
                self._schema.resolve(resolved.base)
                if isinstance(resolved, SimpleContentType) else None)
            algebra.annotate_element(element, type_name,
                                     simple_type=simple, nilled=True)
            if isinstance(resolved, (SimpleContentType,
                                     ComplexContentType)):
                self._add_attributes(algebra, element, resolved)
            return element

        if isinstance(resolved, SimpleType):
            algebra.annotate_element(element, type_name,
                                     simple_type=resolved)
            algebra.append_child(
                element,
                algebra.create_text(self._sampler.sample(resolved)))
            return element

        if isinstance(resolved, SimpleContentType):
            base = self._schema.resolve(resolved.base)
            algebra.annotate_element(element, type_name, simple_type=base)
            self._add_attributes(algebra, element, resolved)
            algebra.append_child(
                element, algebra.create_text(self._sampler.sample(base)))
            return element

        algebra.annotate_element(element, type_name)
        self._add_attributes(algebra, element, resolved)
        self._add_group_content(algebra, element, resolved)
        return element

    def _element_namespace(self) -> str:
        return self._schema.target_namespace

    def _add_attributes(self, algebra: StateAlgebra, element: ElementNode,
                        definition) -> None:
        for name, type_ref in definition.attributes:
            simple = self._schema.resolve(type_ref)
            attribute = algebra.create_attribute(
                QName("", name), self._sampler.sample(simple))
            attr_type = (type_ref.qname if isinstance(type_ref, TypeName)
                         else ANY_TYPE_NAME)
            algebra.annotate_attribute(attribute, attr_type,
                                       simple_type=simple)
            algebra.attach_attribute(element, attribute)

    def _add_group_content(self, algebra: StateAlgebra,
                           element: ElementNode,
                           definition: ComplexContentType) -> None:
        group = definition.group
        elements: list[ElementNode] = []
        if group is not None and not group.empty_content:
            elements = self._generate_group(algebra, group)
        if not definition.mixed:
            for child in elements:
                algebra.append_child(element, child)
            return
        # Mixed content: sprinkle text, never two adjacent text nodes.
        if not elements:
            if self._rng.random() < self._mixed_text_probability:
                algebra.append_child(
                    element, algebra.create_text(self._random_text()))
            return
        if self._rng.random() < self._mixed_text_probability:
            algebra.append_child(element,
                                 algebra.create_text(self._random_text()))
        for child in elements:
            algebra.append_child(element, child)
            if self._rng.random() < self._mixed_text_probability:
                algebra.append_child(
                    element, algebra.create_text(self._random_text()))

    def _random_text(self) -> str:
        return " ".join(self._rng.sample(_WORDS,
                                         k=self._rng.randint(1, 3)))

    def _generate_group(self, algebra: StateAlgebra,
                        group: "GroupDefinition | AllGroup"
                        ) -> list[ElementNode]:
        if isinstance(group, AllGroup):
            if group.repetition.minimum == 0 and self._rng.random() < 0.3:
                return []
            members = [m for m in group.members
                       if m.repetition.minimum >= 1
                       or (m.repetition.maximum != 0
                           and self._rng.random() < 0.6)]
            self._rng.shuffle(members)
            return [self._build_element(algebra, member)
                    for member in members]
        out: list[ElementNode] = []
        for _ in range(self._pick_count(group.repetition)):
            if group.combination is CombinationFactor.SEQUENCE:
                for member in group.members:
                    out.extend(self._generate_member(algebra, member))
            else:
                member = self._rng.choice(group.members)
                out.extend(self._generate_member(algebra, member))
        return out

    def _generate_member(self, algebra: StateAlgebra,
                         member) -> list[ElementNode]:
        if isinstance(member, GroupDefinition):
            return self._generate_group(algebra, member)
        return [self._build_element(algebra, member)
                for _ in range(self._pick_count(member.repetition))]
