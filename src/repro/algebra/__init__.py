"""The state algebra of Section 6: carriers, trees, conformance, building."""

from repro.algebra.builder import InstanceBuilder, ValueSampler
from repro.algebra.identity import (
    IdentityViolation,
    check_identity,
    collect_ids,
)
from repro.algebra.conformance import (
    ConformanceChecker,
    Violation,
    check_conformance,
    conforms,
)
from repro.algebra.state import StateAlgebra, build_element_tree
from repro.algebra.tree import (
    Tree,
    document_tree,
    element_subtrees,
    is_well_formed_tree,
    pretty,
    root,
    roots,
    subtree,
)

__all__ = [
    "ConformanceChecker",
    "IdentityViolation",
    "InstanceBuilder",
    "StateAlgebra",
    "Tree",
    "ValueSampler",
    "Violation",
    "build_element_tree",
    "check_conformance",
    "check_identity",
    "collect_ids",
    "conforms",
    "document_tree",
    "element_subtrees",
    "is_well_formed_tree",
    "pretty",
    "root",
    "roots",
    "subtree",
]
