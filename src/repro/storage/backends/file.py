"""The historical durability layout, behind the backend protocol.

One atomic ``SEDNAPY3`` image file plus one WAL file — exactly the
behavior :mod:`repro.storage.recovery` shipped with, extracted
unchanged so every pre-protocol test passes through the seam:

* checkpoint = temp file in the same directory, flush + fsync,
  ``os.replace``, directory fsync — a crash at any fault point leaves
  either the old image or the new one, never a torn hybrid;
* the WAL is a sibling file driven through
  :class:`~repro.storage.wal.FileWalStore`;
* legacy images (``SEDNAPY1``/``SEDNAPY2``) load transparently via
  :func:`~repro.storage.persist.load_engine`'s magic dispatch.

Snapshot versions are retained as whole-image copies under
``<image>.snapshots/<version>.img`` — the file backend is monolithic
by construction, so a version costs one image write.  The copy is
recorded *after* the atomic rename: a crash while recording a version
can never damage the recovery image.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.errors import StorageError
from repro.storage import faults
from repro.storage.backends.base import (
    DEFAULT_MAX_SNAPSHOTS,
    SnapshotInfo,
    StorageBackend,
    parse_version,
    schema_fingerprint,
    snapshot_version,
)
from repro.storage.faults import CrashError
from repro.storage.persist import dumps_engine, load_engine
from repro.storage.wal import FileWalStore, WalStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import StorageEngine


def _fsync_directory(directory: Path) -> None:
    """Make a rename durable (best-effort on exotic filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def write_image_atomically(path: Path, data: bytes) -> None:
    """The classic checkpoint write: temp + fsync + rename, with the
    ``persist.write`` / ``persist.write.torn`` / ``persist.rename``
    fault points exactly where they always were."""
    tmp = path.with_name(path.name + ".tmp")
    faults.fire("persist.write")
    with open(tmp, "wb") as handle:
        if faults.wants("persist.write.torn"):
            handle.write(data[:max(1, len(data) // 2)])
            handle.flush()
            raise CrashError("persist.write.torn")
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    faults.fire("persist.rename")
    os.replace(tmp, path)
    _fsync_directory(path.parent)


class FileBackend(StorageBackend):
    """Atomic image file + WAL file (the extracted historical shape)."""

    name = "file"

    def __init__(self, image_path: str | os.PathLike,
                 wal_path: Optional[str | os.PathLike] = None,
                 max_snapshots: Optional[int] = DEFAULT_MAX_SNAPSHOTS
                 ) -> None:
        super().__init__(max_snapshots=max_snapshots)
        self.image_path = Path(image_path)
        self.wal_path = Path(wal_path) if wal_path is not None else None
        self._wal_store: Optional[FileWalStore] = None

    @property
    def snapshot_dir(self) -> Path:
        return self.image_path.with_name(self.image_path.name
                                         + ".snapshots")

    # -- checkpointing ---------------------------------------------------

    def _write_snapshot(self, engine: "StorageEngine",
                        horizon: int) -> SnapshotInfo:
        data = dumps_engine(engine, checkpoint_lsn=horizon)
        write_image_atomically(self.image_path, data)
        fingerprint = schema_fingerprint(engine)
        version = snapshot_version(horizon, fingerprint)
        # Version recording happens strictly after the atomic rename:
        # a crash from here on loses at worst the *copy*, never the
        # recovery image.
        self.snapshot_dir.mkdir(exist_ok=True)
        target = self.snapshot_dir / f"{version}.img"
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, target)
        return SnapshotInfo(version=version, lsn=horizon,
                            fingerprint=fingerprint,
                            seq=len(self.list_snapshots()) - 1,
                            bytes=len(data))

    # -- loading ---------------------------------------------------------

    def load_engine(self) -> "StorageEngine":
        if not self.image_path.exists():
            raise StorageError(
                f"no checkpoint image at {self.image_path}")
        return load_engine(self.image_path.read_bytes(),
                           backend=self.name)

    def restore(self, version: str) -> "StorageEngine":
        target = self.snapshot_dir / f"{version}.img"
        if not target.exists():
            raise StorageError(
                f"unknown snapshot version {version!r} "
                f"(backend {self.name}, {self.describe()})")
        return load_engine(
            target.read_bytes(), backend=self.name,
            place=lambda pos: f"snapshot {version} byte {pos}")

    # -- snapshot management ---------------------------------------------

    def list_snapshots(self) -> list[SnapshotInfo]:
        if not self.snapshot_dir.is_dir():
            return []
        infos = []
        for entry in self.snapshot_dir.glob("*.img"):
            version = entry.stem
            lsn, fingerprint = parse_version(version)
            infos.append(SnapshotInfo(
                version=version, lsn=lsn, fingerprint=fingerprint,
                seq=0, bytes=entry.stat().st_size))
        infos.sort(key=lambda info: (info.lsn, info.version))
        return [SnapshotInfo(version=info.version, lsn=info.lsn,
                             fingerprint=info.fingerprint, seq=seq,
                             bytes=info.bytes)
                for seq, info in enumerate(infos)]

    def evict_snapshots(self, keep: int) -> list[str]:
        snapshots = self.list_snapshots()
        evicted = []
        for info in snapshots[:max(0, len(snapshots) - keep)]:
            (self.snapshot_dir / f"{info.version}.img").unlink(
                missing_ok=True)
            evicted.append(info.version)
        return evicted

    # -- the log medium --------------------------------------------------

    def wal_store(self) -> Optional[WalStore]:
        if self.wal_path is None:
            return None
        if self._wal_store is None:
            self._wal_store = FileWalStore(self.wal_path)
        return self._wal_store

    def close(self) -> None:
        if self._wal_store is not None:
            self._wal_store.close()
            self._wal_store = None

    def describe(self) -> str:
        return str(self.image_path)
