"""An in-process backend for hermetic tests.

Durable state lives in this object: the current image bytes, the
retained snapshot versions, and one :class:`MemoryWalStore`.  The
fault-point sequence mirrors the file backend — ``persist.write``
fires before anything changes and ``persist.write.torn`` crashes
*without* replacing the held image (the in-memory analogue of "the
old image survives a torn write"), so the crash matrix parametrizes
over this backend unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import StorageError
from repro.storage import faults
from repro.storage.backends.base import (
    DEFAULT_MAX_SNAPSHOTS,
    SnapshotInfo,
    StorageBackend,
    schema_fingerprint,
    snapshot_version,
)
from repro.storage.faults import CrashError
from repro.storage.persist import dumps_engine, load_engine
from repro.storage.wal import MemoryWalStore, WalStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import StorageEngine


class MemoryBackend(StorageBackend):
    """Image, snapshots and WAL held in process memory."""

    name = "memory"

    def __init__(self,
                 max_snapshots: Optional[int] = DEFAULT_MAX_SNAPSHOTS
                 ) -> None:
        super().__init__(max_snapshots=max_snapshots)
        self._current: Optional[bytes] = None
        self._snapshots: dict[str, tuple[int, bytes]] = {}
        self._seq = 0
        self._wal = MemoryWalStore()

    # -- checkpointing ---------------------------------------------------

    def _write_snapshot(self, engine: "StorageEngine",
                        horizon: int) -> SnapshotInfo:
        data = dumps_engine(engine, checkpoint_lsn=horizon)
        faults.fire("persist.write")
        if faults.wants("persist.write.torn"):
            # The held image stays intact — torn bytes never publish.
            raise CrashError("persist.write.torn")
        faults.fire("persist.rename")
        self._current = data
        fingerprint = schema_fingerprint(engine)
        version = snapshot_version(horizon, fingerprint)
        if version not in self._snapshots:
            self._seq += 1
        seq = self._snapshots.get(version, (self._seq,))[0]
        self._snapshots[version] = (seq, data)
        return SnapshotInfo(version=version, lsn=horizon,
                            fingerprint=fingerprint, seq=seq,
                            bytes=len(data))

    # -- loading ---------------------------------------------------------

    def load_engine(self) -> "StorageEngine":
        if self._current is None:
            raise StorageError(
                f"no checkpoint image at {self.describe()}")
        return load_engine(self._current, backend=self.name)

    def restore(self, version: str) -> "StorageEngine":
        entry = self._snapshots.get(version)
        if entry is None:
            raise StorageError(
                f"unknown snapshot version {version!r} "
                f"(backend {self.name})")
        return load_engine(
            entry[1], backend=self.name,
            place=lambda pos: f"snapshot {version} byte {pos}")

    # -- snapshot management ---------------------------------------------

    def list_snapshots(self) -> list[SnapshotInfo]:
        infos = []
        for version, (seq, data) in sorted(self._snapshots.items(),
                                           key=lambda kv: kv[1][0]):
            lsn = int(version.partition("-")[0])
            infos.append(SnapshotInfo(
                version=version, lsn=lsn,
                fingerprint=version.partition("-")[2], seq=seq,
                bytes=len(data)))
        return infos

    def evict_snapshots(self, keep: int) -> list[str]:
        snapshots = self.list_snapshots()
        evicted = []
        for info in snapshots[:max(0, len(snapshots) - keep)]:
            del self._snapshots[info.version]
            evicted.append(info.version)
        return evicted

    # -- the log medium --------------------------------------------------

    def wal_store(self) -> Optional[WalStore]:
        return self._wal

    def describe(self) -> str:
        return "<memory backend>"
