"""The pluggable durability seam: :class:`StorageBackend`.

The §9 engine state (descriptive schema + per-schema-node block lists
+ numbering labels) used to be durable in exactly one shape — a
monolithic ``SEDNAPY3`` image file plus a WAL file.  This package
carves that coupling out: a backend owns *where* checkpoint images,
WAL frames and snapshot versions live, while the write-ahead rule,
torn-tail detection and replay semantics stay in
:mod:`repro.storage.wal` / :mod:`repro.storage.recovery`, written once
against this protocol.

Snapshot versioning (ADR-004 shape): every checkpoint records a
version keyed by a **deterministic fingerprint** of the descriptive
schema plus the checkpoint LSN — no timestamps, no randomness — so
the same engine state checkpointed twice (or on two machines) yields
the same version id.  ``list_snapshots()`` enumerates retained
versions, ``restore(version)`` reconstructs the engine as of that
checkpoint, and eviction bounds retention.
"""

from __future__ import annotations

import hashlib
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.errors import StorageError
from repro.storage.wal import WalStore, WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import StorageEngine

#: Snapshot versions retained by default before eviction kicks in.
DEFAULT_MAX_SNAPSHOTS = 16


def schema_fingerprint(engine: "StorageEngine") -> str:
    """Deterministic fingerprint of the engine's descriptive shape.

    Canonical serialization of numbering base, block capacity, the
    descriptive-schema paths (pre-order, with node types) and the
    declared index definitions, hashed with SHA-256.  Two engines with
    the same descriptive shape fingerprint identically, whatever their
    descriptor contents — the fingerprint detects *schema* drift
    between snapshots, the LSN distinguishes *data* states.
    """
    digest = hashlib.sha256()
    digest.update(f"base={engine.numbering.base};"
                  f"capacity={engine.block_capacity}".encode("utf-8"))
    for path, node_type in engine.schema.paths():
        digest.update(f"|{path}#{node_type}".encode("utf-8"))
    for definition in engine.indexes.definitions():
        digest.update(f"|index:{definition.path}:{definition.kind}:"
                      f"{definition.value_type}".encode("utf-8"))
    return digest.hexdigest()


def snapshot_version(lsn: int, fingerprint: str) -> str:
    """The version id of a checkpoint: zero-padded LSN + the first 12
    fingerprint hex digits.  Same schema + same LSN → same id, across
    runs and machines (there is deliberately no timestamp in here)."""
    return f"{lsn:010d}-{fingerprint[:12]}"


def parse_version(version: str) -> tuple[int, str]:
    """Split a version id back into ``(lsn, fingerprint_prefix)``."""
    lsn_text, _, fingerprint = version.partition("-")
    try:
        return int(lsn_text), fingerprint
    except ValueError as error:
        raise StorageError(
            f"malformed snapshot version {version!r}") from error


@dataclass(frozen=True)
class SnapshotInfo:
    """One retained checkpoint version."""

    version: str          # deterministic id: LSN + fingerprint prefix
    lsn: int              # the WAL horizon the snapshot covers
    fingerprint: str      # full schema fingerprint (hex)
    seq: int              # retention order (monotone per backend)
    bytes: int = 0        # persisted payload size (best effort)
    mode: str = "full"    # "full" | "incremental" (dirty blocks only)

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "lsn": self.lsn,
            "fingerprint": self.fingerprint,
            "seq": self.seq,
            "bytes": self.bytes,
            "mode": self.mode,
        }


class StorageBackend(ABC):
    """Where one engine's durable state lives.

    Concrete backends: :class:`~repro.storage.backends.file.FileBackend`
    (atomic image file + WAL file — the historical layout, extracted
    unchanged), :class:`~repro.storage.backends.sqlite.SqliteBackend`
    (blocks, index definitions and WAL frames as rows, with dirty-block
    incremental checkpoints) and
    :class:`~repro.storage.backends.memory.MemoryBackend` (hermetic
    tests).

    The contract every implementation keeps:

    * ``checkpoint`` is **atomic** — a crash at any of the named fault
      points (``persist.write``, ``persist.write.torn``,
      ``persist.rename``) leaves the previous state intact;
    * every successful checkpoint records a :class:`SnapshotInfo`
      under its deterministic version id and resets the WAL past the
      horizon;
    * ``load_engine``/``restore`` reconstruct an engine whose labels,
      block layout and index definitions round-trip exactly
      (``relabels == 0`` through recovery).
    """

    #: Label carried by corruption errors and recovery results.
    name: str = "?"

    def __init__(self,
                 max_snapshots: Optional[int] = DEFAULT_MAX_SNAPSHOTS
                 ) -> None:
        self.max_snapshots = max_snapshots

    # -- checkpointing ---------------------------------------------------

    def checkpoint(self, engine: "StorageEngine",
                   wal: Optional[WriteAheadLog] = None) -> SnapshotInfo:
        """Atomically persist *engine*; returns the recorded snapshot.

        The WAL horizon is *wal*'s last LSN (0 without a log); the log
        is reset past it afterwards.  A crash between the snapshot
        landing and the log reset is harmless — replay skips records
        at or below the horizon.
        """
        if engine.document is None:
            raise StorageError("cannot checkpoint an empty engine")
        recording = obs.RECORDING
        started = time.perf_counter_ns() if recording else 0
        horizon = wal.last_lsn if wal is not None else 0
        info = self._write_snapshot(engine, horizon)
        if wal is not None:
            wal.reset(checkpoint_lsn=horizon)
        if self.max_snapshots is not None:
            self.evict_snapshots(keep=self.max_snapshots)
        if recording:
            registry = obs.REGISTRY
            registry.counter("recovery.checkpoints").inc()
            registry.counter("recovery.checkpoint.bytes").inc(info.bytes)
            registry.counter(f"checkpoint.{info.mode}").inc()
            registry.histogram(f"checkpoint.{self.name}.ns").observe(
                time.perf_counter_ns() - started)
        return info

    @abstractmethod
    def _write_snapshot(self, engine: "StorageEngine",
                        horizon: int) -> SnapshotInfo:
        """Backend-specific atomic persist + version recording."""

    # -- loading ---------------------------------------------------------

    @abstractmethod
    def load_engine(self) -> "StorageEngine":
        """Reconstruct the engine from the current (latest) state."""

    @abstractmethod
    def restore(self, version: str) -> "StorageEngine":
        """Reconstruct the engine as of snapshot *version*."""

    # -- snapshot management ---------------------------------------------

    @abstractmethod
    def list_snapshots(self) -> list[SnapshotInfo]:
        """Retained versions, oldest first."""

    @abstractmethod
    def evict_snapshots(self, keep: int) -> list[str]:
        """Drop all but the *keep* most recent versions; returns the
        evicted version ids.  The current state itself never goes."""

    # -- the log medium --------------------------------------------------

    @abstractmethod
    def wal_store(self) -> Optional[WalStore]:
        """The medium this backend keeps its WAL on (None when the
        backend was opened without one)."""

    def open_wal(self, sync: bool = True) -> Optional[WriteAheadLog]:
        """A :class:`WriteAheadLog` over :meth:`wal_store` (None when
        the backend has no log medium)."""
        store = self.wal_store()
        if store is None:
            return None
        return WriteAheadLog(store, sync=sync)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    @abstractmethod
    def describe(self) -> str:
        """Human-readable address of the durable state."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"
