"""Pluggable storage backends (see :mod:`repro.storage.backends.base`).

``BACKENDS`` maps the CLI/benchmark names to constructors; every
implementation keeps the same atomicity, fault-point and
relabels == 0 contract, so the recovery suite parametrizes over them.
"""

from repro.storage.backends.base import (
    DEFAULT_MAX_SNAPSHOTS,
    SnapshotInfo,
    StorageBackend,
    parse_version,
    schema_fingerprint,
    snapshot_version,
)
from repro.storage.backends.file import FileBackend, \
    write_image_atomically
from repro.storage.backends.memory import MemoryBackend
from repro.storage.backends.sqlite import SqliteBackend, SqliteWalStore

#: CLI/benchmark names of the shipped backends.
BACKENDS = {
    "file": FileBackend,
    "sqlite": SqliteBackend,
    "memory": MemoryBackend,
}

__all__ = [
    "BACKENDS",
    "DEFAULT_MAX_SNAPSHOTS",
    "FileBackend",
    "MemoryBackend",
    "SnapshotInfo",
    "SqliteBackend",
    "SqliteWalStore",
    "StorageBackend",
    "parse_version",
    "schema_fingerprint",
    "snapshot_version",
    "write_image_atomically",
]
