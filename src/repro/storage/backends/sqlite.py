"""Blocks, index definitions and WAL frames as SQLite rows.

Where :class:`FileBackend` rewrites one monolithic image per
checkpoint, this backend makes durability **block-granular** — the
unit the §9 layout already updates in: an engine mutation touches one
block (or splits it), so a checkpoint after a small mutation only has
to upsert the few rows whose persisted form changed.

Layout (one database file):

* ``block_rows(block_id, gen, payload)`` — copy-on-write generations
  of each block's binary payload (descriptor nids, links-as-nids,
  values, in the in-block order chain), encoded with the shared
  :mod:`repro.storage.codec`;
* ``snapshots(version, seq, lsn, fingerprint, manifest, bytes)`` —
  one row per retained checkpoint; the JSON manifest pins the
  descriptive schema (pre-order), index definitions, per-schema-node
  block chains and the exact ``block_id → gen`` map the version was
  built from, so ``restore(version)`` is just "read those rows";
* ``wal_chunks(seq, data)`` — the WAL as framed byte chunks on a
  *separate connection* (log appends must be durable independently of
  any in-flight checkpoint transaction);
* ``meta(key, value)`` — the current version pointer and the
  generation counter.

Checkpoint protocol: drain the engine's
:class:`~repro.storage.checkpoints.CheckpointTracker` under this
backend's consumer identity — a full write when the diff is not
relative to this store's own last checkpoint, a dirty-block upsert
otherwise — inside one SQLite transaction whose COMMIT is the atomic
publish.  The named fault points keep their historical meaning:
``persist.write`` fires before any row lands, ``persist.write.torn``
writes half the rows and dies (the transaction rolls back — the old
snapshot stays intact, exactly the old-image-survives contract), and
``persist.rename`` fires just before COMMIT.

Eviction deletes old snapshot rows and garbage-collects block
generations no retained manifest references.
"""

from __future__ import annotations

import io
import json
import os
import sqlite3
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.errors import CorruptionError, StorageError
from repro.storage import faults
from repro.storage.backends.base import (
    DEFAULT_MAX_SNAPSHOTS,
    SnapshotInfo,
    StorageBackend,
    schema_fingerprint,
    snapshot_version,
)
from repro.storage.blocks import Block
from repro.storage.codec import Reader, Writer
from repro.storage.descriptor import NodeDescriptor
from repro.storage.faults import CrashError
from repro.storage.indexes import KINDS, IndexDefinition
from repro.storage.wal import WalStore
from repro.xmlio.qname import QName

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.engine import StorageEngine

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS block_rows (
    block_id INTEGER NOT NULL,
    gen      INTEGER NOT NULL,
    payload  BLOB NOT NULL,
    PRIMARY KEY (block_id, gen)
);
CREATE TABLE IF NOT EXISTS snapshots (
    version     TEXT PRIMARY KEY,
    seq         INTEGER NOT NULL,
    lsn         INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    manifest    TEXT NOT NULL,
    bytes       INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS wal_chunks (
    seq  INTEGER PRIMARY KEY AUTOINCREMENT,
    data BLOB NOT NULL
);
"""


class SqliteWalStore(WalStore):
    """The WAL as framed chunk rows (one row per append).

    Presented to :class:`~repro.storage.wal.WriteAheadLog` as one byte
    stream, so the shared framing and torn-tail scan apply unchanged;
    a torn append is simply a partial-frame row, detected by the same
    CRC walk and truncated away at reopen.  Each append COMMITs — the
    SQLite transaction is the durability barrier, so ``sync`` is a
    no-op.
    """

    backend = "sqlite"

    def __init__(self, connection: sqlite3.Connection,
                 describe: str) -> None:
        self._conn = connection
        self._describe = describe

    def load(self) -> bytes:
        rows = self._conn.execute(
            "SELECT data FROM wal_chunks ORDER BY seq").fetchall()
        return b"".join(row[0] for row in rows)

    def append(self, chunk: bytes) -> None:
        self._conn.execute("INSERT INTO wal_chunks (data) VALUES (?)",
                           (chunk,))
        self._conn.commit()

    def sync(self) -> None:
        pass  # each append commits: already durable

    def truncate(self, valid_bytes: int) -> None:
        rows = self._conn.execute(
            "SELECT seq, data FROM wal_chunks ORDER BY seq").fetchall()
        position = 0
        for seq, data in rows:
            end = position + len(data)
            if end <= valid_bytes:
                position = end
                continue
            if position < valid_bytes:
                # A chunk straddling the cut: keep its valid prefix.
                self._conn.execute(
                    "UPDATE wal_chunks SET data = ? WHERE seq = ?",
                    (data[:valid_bytes - position], seq))
            else:
                self._conn.execute(
                    "DELETE FROM wal_chunks WHERE seq = ?", (seq,))
            position = end
        self._conn.commit()

    def reset(self, header: bytes) -> None:
        self._conn.execute("DELETE FROM wal_chunks")
        self._conn.execute("INSERT INTO wal_chunks (data) VALUES (?)",
                           (header,))
        self._conn.commit()

    def describe(self) -> str:
        return f"{self._describe}#wal_chunks"


def _encode_block(block: Block) -> bytes:
    """The binary payload of one block: descriptor count, then per
    descriptor (in in-block order) its nid, parent/left/right links
    as optional nids, and the optional text value."""
    buffer = io.BytesIO()
    writer = Writer(buffer)
    ordered = []
    block.extend_in_order(ordered)
    writer.u32(len(ordered))
    for descriptor in ordered:
        writer.nid(descriptor.nid)
        for link in (descriptor.parent, descriptor.left_sibling,
                     descriptor.right_sibling):
            if link is not None:
                writer.u8(1)
                writer.nid(link.nid)
            else:
                writer.u8(0)
        if descriptor.value is not None:
            writer.u8(1)
            writer.text(descriptor.value)
        else:
            writer.u8(0)
    return buffer.getvalue()


class SqliteBackend(StorageBackend):
    """Incremental, row-granular durability in one SQLite file."""

    name = "sqlite"

    def __init__(self, db_path: str | os.PathLike,
                 max_snapshots: Optional[int] = DEFAULT_MAX_SNAPSHOTS
                 ) -> None:
        super().__init__(max_snapshots=max_snapshots)
        self.db_path = Path(db_path)
        self._conn = sqlite3.connect(self.db_path,
                                     isolation_level=None)
        self._conn.executescript(_SCHEMA_SQL)
        self._wal_conn: Optional[sqlite3.Connection] = None
        self._wal_store: Optional[SqliteWalStore] = None

    @property
    def _consumer(self) -> str:
        """This store's identity for the dirty-diff handshake."""
        return f"sqlite:{self.db_path.resolve()}"

    # -- checkpointing ---------------------------------------------------

    def _write_snapshot(self, engine: "StorageEngine",
                        horizon: int) -> SnapshotInfo:
        tracker = engine.checkpoints
        full, dirty, dropped = tracker.begin(self._consumer)
        previous = self._current_manifest()
        if previous is None:
            full = True
        gens: dict[int, int] = {} if full else \
            {int(key): value
             for key, value in previous["gens"].items()}

        schema_nodes = list(engine.schema.iter_nodes())
        schema_index = {id(node): i
                        for i, node in enumerate(schema_nodes)}
        live_blocks: dict[int, Block] = {}
        chains: list[list[int]] = []
        for node in schema_nodes:
            chain = []
            for block in node.blocks():
                chain.append(block.block_id)
                live_blocks[block.block_id] = block
            chains.append(chain)

        if full:
            to_write = list(live_blocks.values())
        else:
            for block_id in dropped:
                gens.pop(block_id, None)
            to_write = [live_blocks[block_id] for block_id in dirty
                        if block_id in live_blocks]

        gen = int(self._meta_get("gen", "0")) + 1
        for block in to_write:
            gens[block.block_id] = gen
        # Stale map entries for blocks no longer live (covers drops
        # the tracker could not see, e.g. after a foreign full write).
        gens = {block_id: g for block_id, g in gens.items()
                if block_id in live_blocks}

        fingerprint = schema_fingerprint(engine)
        version = snapshot_version(horizon, fingerprint)
        manifest = {
            "base": engine.numbering.base,
            "capacity": engine.block_capacity,
            "lsn": horizon,
            "schema": [
                [schema_index[id(node.parent)]
                 if node.parent is not None else None,
                 node.node_type,
                 node.name.uri if node.name is not None else None,
                 node.name.local if node.name is not None else None]
                for node in schema_nodes],
            "indexes": [[d.path, d.kind, d.value_type]
                        for d in engine.indexes.definitions()],
            "chains": chains,
            "gens": {str(block_id): g
                     for block_id, g in gens.items()},
            "stats": engine.stats.export(),
        }
        manifest_text = json.dumps(manifest, separators=(",", ":"))

        payload_bytes = 0
        try:
            self._conn.execute("BEGIN IMMEDIATE")
            faults.fire("persist.write")
            if faults.wants("persist.write.torn"):
                # Half the rows land, then the process dies; the open
                # transaction rolls back, so the previous snapshot
                # stays intact — the row analogue of a torn image
                # write that never reached the rename.
                for block in to_write[:len(to_write) // 2]:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO block_rows "
                        "(block_id, gen, payload) VALUES (?, ?, ?)",
                        (block.block_id, gen, _encode_block(block)))
                raise CrashError("persist.write.torn")
            for block in to_write:
                payload = _encode_block(block)
                payload_bytes += len(payload)
                self._conn.execute(
                    "INSERT OR REPLACE INTO block_rows "
                    "(block_id, gen, payload) VALUES (?, ?, ?)",
                    (block.block_id, gen, payload))
            self._conn.execute(
                "INSERT OR REPLACE INTO snapshots "
                "(version, seq, lsn, fingerprint, manifest, bytes) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (version, gen, horizon, fingerprint, manifest_text,
                 payload_bytes))
            self._meta_set("gen", str(gen))
            self._meta_set("current_version", version)
            faults.fire("persist.rename")  # the publish barrier
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")
        tracker.complete(self._consumer)
        return SnapshotInfo(version=version, lsn=horizon,
                            fingerprint=fingerprint, seq=gen,
                            bytes=payload_bytes,
                            mode="full" if full else "incremental")

    # -- meta helpers ----------------------------------------------------

    def _meta_get(self, key: str, default: Optional[str] = None
                  ) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return row[0] if row is not None else default

    def _meta_set(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, value))

    def _current_manifest(self) -> Optional[dict]:
        version = self._meta_get("current_version")
        if version is None:
            return None
        row = self._conn.execute(
            "SELECT manifest FROM snapshots WHERE version = ?",
            (version,)).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    # -- loading ---------------------------------------------------------

    def load_engine(self) -> "StorageEngine":
        version = self._meta_get("current_version")
        if version is None:
            raise StorageError(
                f"no checkpoint image at {self.describe()}")
        return self.restore(version)

    def restore(self, version: str) -> "StorageEngine":
        row = self._conn.execute(
            "SELECT manifest FROM snapshots WHERE version = ?",
            (version,)).fetchone()
        if row is None:
            raise StorageError(
                f"unknown snapshot version {version!r} "
                f"(backend {self.name}, {self.describe()})")
        return self._build_engine(json.loads(row[0]), version)

    def _build_engine(self, manifest: dict,
                      version: str) -> "StorageEngine":
        from repro.storage.engine import StorageEngine

        capacity = manifest["capacity"]
        engine = StorageEngine(base=manifest["base"],
                               block_capacity=capacity)
        engine.checkpoint_lsn = manifest["lsn"]

        schema_nodes = []
        for index, (parent_index, node_type, uri, local) in \
                enumerate(manifest["schema"]):
            if parent_index is None:
                if index != 0 or node_type != "document":
                    raise self._corrupt(
                        "malformed schema tree in snapshot manifest",
                        version)
                schema_nodes.append(engine.schema.root)
                continue
            name = QName(uri, local) if local is not None else None
            schema_nodes.append(engine.schema.get_or_add_child(
                schema_nodes[parent_index], name, node_type))

        gens = {int(key): value
                for key, value in manifest["gens"].items()}
        by_symbols: dict[tuple, NodeDescriptor] = {}
        all_descriptors: list[NodeDescriptor] = []
        links: list[tuple[NodeDescriptor, object, object, object]] = []
        max_block_id = -1
        for schema_node, chain in zip(schema_nodes,
                                      manifest["chains"]):
            previous: Optional[Block] = None
            for block_id in chain:
                gen = gens.get(block_id)
                location = f"block {block_id} gen {gen}"
                if gen is None:
                    raise self._corrupt(
                        f"snapshot manifest references block "
                        f"{block_id} without a generation", version)
                row = self._conn.execute(
                    "SELECT payload FROM block_rows "
                    "WHERE block_id = ? AND gen = ?",
                    (block_id, gen)).fetchone()
                if row is None:
                    raise self._corrupt(
                        f"missing block row ({location})", version)
                block = Block(schema_node, capacity)
                block.block_id = block_id
                max_block_id = max(max_block_id, block_id)
                if previous is None:
                    schema_node.first_block = block
                else:
                    previous.next_block = block
                    block.prev_block = previous
                schema_node.last_block = block
                previous = block
                reader = Reader(
                    row[0], backend=self.name,
                    place=lambda pos, loc=location:
                        f"{loc} byte {pos}",
                    what="block payload")
                count = reader.u32()
                last: Optional[NodeDescriptor] = None
                for _ in range(count):
                    nid = reader.nid()
                    parent_nid = reader.nid() if reader.u8() else None
                    left_nid = reader.nid() if reader.u8() else None
                    right_nid = reader.nid() if reader.u8() else None
                    value = reader.text() if reader.u8() else None
                    descriptor = NodeDescriptor(schema_node, nid,
                                                value=value)
                    block.insert_after(descriptor, last)
                    last = descriptor
                    schema_node.descriptor_count += 1
                    by_symbols[nid.symbols()] = descriptor
                    all_descriptors.append(descriptor)
                    links.append((descriptor, parent_nid, left_nid,
                                  right_nid))
                if not reader.at_end():
                    raise self._corrupt(
                        f"trailing bytes in block payload ({location})",
                        version)
        # Stored block ids survive the round trip; keep the global
        # allocator past them so future splits never collide.
        if max_block_id >= Block._next_id:
            Block._next_id = max_block_id + 1

        def resolve(nid, role, owner):
            if nid is None:
                return None
            target = by_symbols.get(nid.symbols())
            if target is None:
                raise self._corrupt(
                    f"descriptor {owner.nid!r} links to missing "
                    f"{role} {nid!r}", version)
            return target

        for descriptor, parent_nid, left_nid, right_nid in links:
            descriptor.parent = resolve(parent_nid, "parent",
                                        descriptor)
            descriptor.left_sibling = resolve(left_nid, "left sibling",
                                              descriptor)
            descriptor.right_sibling = resolve(right_nid,
                                               "right sibling",
                                               descriptor)

        # Rebuild the first-child-by-schema pointers from the links.
        for descriptor in all_descriptors:
            parent = descriptor.parent
            if parent is None:
                continue
            index = parent.schema_node.child_index(
                descriptor.schema_node)
            current = parent.children_by_schema.get(index)
            if current is None or descriptor.nid.symbols() < \
                    current.nid.symbols():
                parent.children_by_schema[index] = descriptor

        root_block = schema_nodes[0].first_block
        document = root_block.first_descriptor() \
            if root_block is not None else None
        if document is None or document.node_type != "document":
            raise self._corrupt("snapshot holds no document node",
                                version)
        engine.document = document
        engine.check_invariants()

        # Row decoding bypassed the mutation hooks, so the statistics
        # are rebuilt from scratch; a persisted digest (absent from
        # pre-stats manifests) doubles as a corruption check.
        from repro.obs.statistics import StatisticsCollector
        engine.stats = StatisticsCollector.recount(engine)
        persisted_stats = manifest.get("stats")
        if persisted_stats is not None and \
                persisted_stats != engine.stats.export():
            raise self._corrupt(
                "persisted statistics digest does not match the "
                "recounted stored data", version)

        for path, kind, value_type in manifest["indexes"]:
            definition = IndexDefinition(path, kind, value_type)
            if definition.kind not in KINDS:
                raise self._corrupt(
                    f"unknown index kind {definition.kind!r} in "
                    "snapshot manifest", version)
            engine.indexes.install(definition)
        return engine

    def _corrupt(self, message: str, version: str) -> CorruptionError:
        return CorruptionError(
            f"{message} (snapshot {version}, {self.describe()})",
            backend=self.name, location=f"snapshot {version}")

    # -- snapshot management ---------------------------------------------

    def list_snapshots(self) -> list[SnapshotInfo]:
        rows = self._conn.execute(
            "SELECT version, seq, lsn, fingerprint, bytes "
            "FROM snapshots ORDER BY seq").fetchall()
        return [SnapshotInfo(version=version, lsn=lsn,
                             fingerprint=fingerprint, seq=seq,
                             bytes=size)
                for version, seq, lsn, fingerprint, size in rows]

    def evict_snapshots(self, keep: int) -> list[str]:
        snapshots = self.list_snapshots()
        current = self._meta_get("current_version")
        evicted = []
        for info in snapshots[:max(0, len(snapshots) - keep)]:
            if info.version == current:
                continue  # the current state itself never goes
            self._conn.execute(
                "DELETE FROM snapshots WHERE version = ?",
                (info.version,))
            evicted.append(info.version)
        if evicted:
            self._gc_generations()
        self._conn.commit()
        return evicted

    def _gc_generations(self) -> None:
        """Drop block generations no retained manifest references."""
        referenced: set[tuple[int, int]] = set()
        for (manifest_text,) in self._conn.execute(
                "SELECT manifest FROM snapshots").fetchall():
            manifest = json.loads(manifest_text)
            for key, gen in manifest["gens"].items():
                referenced.add((int(key), gen))
        rows = self._conn.execute(
            "SELECT block_id, gen FROM block_rows").fetchall()
        for block_id, gen in rows:
            if (block_id, gen) not in referenced:
                self._conn.execute(
                    "DELETE FROM block_rows "
                    "WHERE block_id = ? AND gen = ?", (block_id, gen))

    # -- the log medium --------------------------------------------------

    def wal_store(self) -> Optional[WalStore]:
        if self._wal_store is None:
            # The log gets its own connection: appends must commit
            # independently of an in-flight checkpoint transaction.
            self._wal_conn = sqlite3.connect(self.db_path,
                                             isolation_level=None)
            self._wal_store = SqliteWalStore(self._wal_conn,
                                             str(self.db_path))
        return self._wal_store

    def close(self) -> None:
        if self._wal_conn is not None:
            self._wal_conn.close()
            self._wal_conn = None
            self._wal_store = None
        self._conn.close()

    def describe(self) -> str:
        return str(self.db_path)
