"""The Sedna-style storage engine (Section 9).

The engine owns a descriptive schema, a numbering scheme and the block
store.  Loading a document distributes its node descriptors into
per-schema-node block lists; every accessor of the Section 5 data model
is then answered from descriptor + schema-node data alone (the claim of
Section 9.2), and updates insert or delete descriptors **without ever
relabeling** existing nodes (Proposition 1) and without shifting
descriptors inside blocks (the unordered-block design).

Instrumentation counters (splits, inserts, relabels) feed the
benchmark harness.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Iterator, Optional

from repro import obs
from repro.obs.statistics import StatisticsCollector
from repro.errors import StorageError, UpdateError
from repro.xmlio.nodes import XmlDocument, XmlElement, XmlText
from repro.xmlio.qname import QName
from repro.xdm.node import DocumentNode, ElementNode, Node, TextNode
from repro.storage import faults
from repro.storage.blocks import Block
from repro.storage.checkpoints import CheckpointTracker
from repro.storage.descriptor import NodeDescriptor
from repro.storage.dschema import DescriptiveSchema, SchemaNode
from repro.storage.indexes import IndexManager
from repro.storage.labels import (
    NidLabel,
    NumberingScheme,
    before,
    is_ancestor,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.txn import TransactionManager


class StorageEngine:
    """One stored document: descriptive schema + blocks + labels."""

    def __init__(self, base: int = 256, block_capacity: int = 64) -> None:
        self.schema = DescriptiveSchema()
        self.numbering = NumberingScheme(base)
        self.block_capacity = block_capacity
        self.document: Optional[NodeDescriptor] = None
        #: Set by :class:`~repro.storage.txn.TransactionManager`; when
        #: attached, every mutation is write-ahead logged (and wrapped
        #: in a single-operation transaction unless one is open).
        self.txn_manager: "TransactionManager | None" = None
        #: The WAL horizon of the image this engine was loaded from
        #: (0 for engines built in memory) — recovery replays past it.
        self.checkpoint_lsn = 0
        #: Declared secondary indexes (checkpoints persist the
        #: definitions; contents are rebuilt from the blocks).
        self.indexes = IndexManager(self)
        #: Dirty-block accounting: which blocks a backend must rewrite
        #: on the next incremental checkpoint.
        self.checkpoints = CheckpointTracker()
        #: Per-schema-node statistics (descriptor counts, byte sizing,
        #: distinct values) maintained incrementally at mutation time —
        #: engine state like ``descriptor_count``, not optional
        #: instrumentation; the cost model's feed.
        self.stats = StatisticsCollector()
        # Instrumentation.
        self.insert_count = 0
        self.delete_count = 0
        self.split_count = 0
        self.relabel_count = 0  # stays 0: Proposition 1
        self._preserve_whitespace = False
        if obs.RECORDING:
            # Materialize the relabel counter at zero: the engine never
            # increments it (Proposition 1), and an explicit 0 in every
            # snapshot is the claim being made.
            obs.REGISTRY.counter("storage.relabels")

    # ==================================================================
    # Loading

    def load_document(self, document: XmlDocument,
                      preserve_whitespace: bool = False) -> NodeDescriptor:
        """Bulk-load a raw parsed document.

        With the default ``preserve_whitespace=False``, whitespace-only
        text nodes between elements are dropped, which reproduces the
        descriptive schema the paper draws for Example 8; pass True to
        store every text node verbatim.
        """
        if self.document is not None:
            raise StorageError("engine already holds a document")
        self._preserve_whitespace = preserve_whitespace
        root_descriptor = self._new_descriptor(
            self.schema.root, self.numbering.root_label())
        self._append_to_schema_blocks(root_descriptor)
        self.document = root_descriptor
        element = document.root
        schema_node = self.schema.get_or_add_child(
            self.schema.root, element.name, "element")
        (label,) = self.numbering.child_labels(root_descriptor.nid, 1)
        element_descriptor = self._new_descriptor(schema_node, label)
        element_descriptor.parent = root_descriptor
        self._append_to_schema_blocks(element_descriptor)
        self._register_child_pointer(root_descriptor, element_descriptor)
        self._load_children(
            element_descriptor,
            list(element.attributes.items()),
            self._raw_children(element))
        return root_descriptor

    def load_tree(self, document: DocumentNode) -> NodeDescriptor:
        """Bulk-load a data-model tree (Section 5 nodes)."""
        if self.document is not None:
            raise StorageError("engine already holds a document")
        root_descriptor = self._new_descriptor(
            self.schema.root, self.numbering.root_label())
        self._append_to_schema_blocks(root_descriptor)
        self.document = root_descriptor
        element = document.document_element()
        schema_node = self.schema.get_or_add_child(
            self.schema.root, element.name, "element")
        (label,) = self.numbering.child_labels(root_descriptor.nid, 1)
        element_descriptor = self._new_descriptor(schema_node, label)
        element_descriptor.parent = root_descriptor
        self._append_to_schema_blocks(element_descriptor)
        self._register_child_pointer(root_descriptor, element_descriptor)
        self._load_xdm_children(element_descriptor, element)
        return root_descriptor

    def _raw_children(self, element: XmlElement) -> list[object]:
        out: list[object] = []
        for child in element.children:
            if isinstance(child, XmlText):
                if (not self._preserve_whitespace
                        and not child.text.strip()):
                    continue
                out.append(("text", child.text))
            else:
                out.append(child)
        return out

    def _new_descriptor(self, schema_node: SchemaNode, nid: NidLabel,
                        value: str | None = None) -> NodeDescriptor:
        descriptor = NodeDescriptor(schema_node, nid, value=value)
        if obs.RECORDING:
            obs.REGISTRY.counter("storage.descriptors.allocated").inc()
        return descriptor

    def _load_children(self, parent_descriptor: NodeDescriptor,
                       attributes: list[tuple[QName, str]],
                       children: list[object]) -> None:
        """Allocate labels and store attributes then children."""
        labels = self.numbering.child_labels(
            parent_descriptor.nid, len(attributes) + len(children))
        cursor = 0
        for name, value in attributes:
            schema_node = self.schema.get_or_add_child(
                parent_descriptor.schema_node, name, "attribute")
            descriptor = self._new_descriptor(schema_node, labels[cursor],
                                              value=value)
            cursor += 1
            descriptor.parent = parent_descriptor
            self._append_to_schema_blocks(descriptor)
            self._register_child_pointer(parent_descriptor, descriptor)
        previous: Optional[NodeDescriptor] = None
        for child in children:
            if isinstance(child, tuple):  # ("text", value)
                schema_node = self.schema.get_or_add_child(
                    parent_descriptor.schema_node, None, "text")
                descriptor = self._new_descriptor(
                    schema_node, labels[cursor], value=child[1])
                cursor += 1
                grandchildren: list[object] = []
                grand_attrs: list[tuple[QName, str]] = []
            else:
                element: XmlElement = child  # type: ignore[assignment]
                schema_node = self.schema.get_or_add_child(
                    parent_descriptor.schema_node, element.name, "element")
                descriptor = self._new_descriptor(schema_node,
                                                  labels[cursor])
                cursor += 1
                grand_attrs = list(element.attributes.items())
                grandchildren = self._raw_children(element)
            descriptor.parent = parent_descriptor
            descriptor.left_sibling = previous
            if previous is not None:
                previous.right_sibling = descriptor
            previous = descriptor
            self._append_to_schema_blocks(descriptor)
            self._register_child_pointer(parent_descriptor, descriptor)
            if not descriptor.is_text_enabled:
                self._load_children(descriptor, grand_attrs, grandchildren)

    def _load_xdm_children(self, descriptor: NodeDescriptor,
                           element: ElementNode) -> None:
        attributes = [(a.node_name().head(), a.string_value())
                      for a in element.attributes()]
        node_children = list(element.children())
        labels = self.numbering.child_labels(
            descriptor.nid, len(attributes) + len(node_children))
        cursor = 0
        for name, value in attributes:
            schema_node = self.schema.get_or_add_child(
                descriptor.schema_node, name, "attribute")
            attr_descriptor = self._new_descriptor(
                schema_node, labels[cursor], value=value)
            cursor += 1
            attr_descriptor.parent = descriptor
            self._append_to_schema_blocks(attr_descriptor)
            self._register_child_pointer(descriptor, attr_descriptor)
        previous: Optional[NodeDescriptor] = None
        for child in node_children:
            if isinstance(child, TextNode):
                schema_node = self.schema.get_or_add_child(
                    descriptor.schema_node, None, "text")
                child_descriptor = self._new_descriptor(
                    schema_node, labels[cursor],
                    value=child.string_value())
                cursor += 1
            elif isinstance(child, ElementNode):
                schema_node = self.schema.get_or_add_child(
                    descriptor.schema_node, child.name, "element")
                child_descriptor = self._new_descriptor(
                    schema_node, labels[cursor])
                cursor += 1
            else:
                raise StorageError(
                    f"unsupported child kind {child.node_kind()!r}")
            child_descriptor.parent = descriptor
            child_descriptor.left_sibling = previous
            if previous is not None:
                previous.right_sibling = child_descriptor
            previous = child_descriptor
            self._append_to_schema_blocks(child_descriptor)
            self._register_child_pointer(descriptor, child_descriptor)
            if isinstance(child, ElementNode):
                self._load_xdm_children(child_descriptor, child)

    # ==================================================================
    # Block placement

    def _append_to_schema_blocks(self, descriptor: NodeDescriptor) -> None:
        """Bulk-load placement: document order equals load order, so the
        descriptor goes to the tail of its schema node's block list."""
        schema_node = descriptor.schema_node
        block = schema_node.last_block
        if block is None:
            block = Block(schema_node, self.block_capacity)
            schema_node.first_block = block
            schema_node.last_block = block
        elif block.is_full:
            fresh = Block(schema_node, self.block_capacity)
            fresh.prev_block = block
            block.next_block = fresh
            schema_node.last_block = fresh
            block = fresh
        block.insert_after(descriptor, block.last_descriptor())
        schema_node.descriptor_count += 1
        self.stats.note_added(descriptor)
        self.checkpoints.mark(block)

    def _place_descriptor(self, descriptor: NodeDescriptor) -> None:
        """Update-path placement: find the document-order position among
        the schema node's existing descriptors, splitting a full block
        when needed.  Only the target block is touched."""
        schema_node = descriptor.schema_node
        if schema_node.first_block is None:
            self._append_to_schema_blocks(descriptor)
            return
        target: Block | None = None
        for block in schema_node.blocks():
            last = block.last_descriptor()
            if last is None or before(descriptor.nid, last.nid):
                target = block
                break
        if target is None:
            # Belongs after everything: append at the tail.
            self._append_to_schema_blocks(descriptor)
            return
        if target.is_full:
            sibling = target.split()
            faults.fire("block.split")
            self.split_count += 1
            # Both halves changed their persisted slot membership.
            self.checkpoints.mark(target)
            self.checkpoints.mark(sibling)
            if obs.RECORDING:
                obs.REGISTRY.counter("storage.blocks.split").inc()
            first_of_sibling = sibling.first_descriptor()
            if (first_of_sibling is not None
                    and before(first_of_sibling.nid, descriptor.nid)):
                target = sibling
        predecessor: Optional[NodeDescriptor] = None
        for candidate in target.iter_in_order():
            if before(candidate.nid, descriptor.nid):
                predecessor = candidate
            else:
                break
        target.insert_after(descriptor, predecessor)
        schema_node.descriptor_count += 1
        self.stats.note_added(descriptor)
        self.checkpoints.mark(target)

    # ==================================================================
    # Accessor evaluation (descriptor + schema node only, §9.2)

    def node_kind(self, descriptor: NodeDescriptor) -> str:
        return descriptor.schema_node.node_type

    def node_name(self, descriptor: NodeDescriptor) -> QName | None:
        return descriptor.schema_node.name

    def parent(self, descriptor: NodeDescriptor) -> NodeDescriptor | None:
        return descriptor.parent

    def children(self, descriptor: NodeDescriptor) -> list[NodeDescriptor]:
        """The child sequence in document order, reconstructed from the
        first-child-by-schema pointers and the sibling chain."""
        first: Optional[NodeDescriptor] = None
        for index, candidate in descriptor.children_by_schema.items():
            if candidate.node_type == "attribute":
                continue
            if candidate.left_sibling is None:
                first = candidate
                break
        out: list[NodeDescriptor] = []
        node = first
        while node is not None:
            out.append(node)
            node = node.right_sibling
        return out

    def first_child_by_schema(self, descriptor: NodeDescriptor,
                              schema_child: SchemaNode
                              ) -> NodeDescriptor | None:
        """Direct use of the §9.2 pointer: the first child attributed
        to *schema_child*, without scanning the sibling chain."""
        index = descriptor.schema_node.child_index(schema_child)
        return descriptor.first_child_for(index)

    def children_via_schema_pointer(
            self, descriptor: NodeDescriptor,
            schema_child: SchemaNode) -> list[NodeDescriptor]:
        """All children attributed to *schema_child*: jump to the first
        via the stored pointer, then follow the sibling chain while the
        schema node matches (children of one schema node are contiguous
        only for element-recurring content; in general we filter)."""
        first = self.first_child_by_schema(descriptor, schema_child)
        out: list[NodeDescriptor] = []
        node = first
        while node is not None:
            if node.schema_node is schema_child:
                out.append(node)
            node = node.right_sibling
        return out

    def attributes(self, descriptor: NodeDescriptor
                   ) -> list[NodeDescriptor]:
        out: list[NodeDescriptor] = []
        for index, schema_child in enumerate(
                descriptor.schema_node.children):
            if schema_child.node_type != "attribute":
                continue
            attribute = descriptor.first_child_for(index)
            if attribute is not None:
                out.append(attribute)
        return out

    def string_value(self, descriptor: NodeDescriptor) -> str:
        if descriptor.is_text_enabled:
            return descriptor.value or ""
        parts: list[str] = []
        for child in self.children(descriptor):
            if child.node_type == "text":
                parts.append(child.value or "")
            elif child.node_type == "element":
                parts.append(self.string_value(child))
        return "".join(parts)

    # ==================================================================
    # Scans

    def iter_document_order(self, descriptor: NodeDescriptor | None = None
                            ) -> Iterator[NodeDescriptor]:
        """Whole-(sub)tree scan in document order (Section 7 rules)."""
        if descriptor is None:
            if self.document is None:
                return
            descriptor = self.document
        yield descriptor
        for attribute in self.attributes(descriptor):
            yield attribute
        for child in self.children(descriptor):
            yield from self.iter_document_order(child)

    def scan_schema_node(self, schema_node: SchemaNode
                         ) -> Iterator[NodeDescriptor]:
        """All instances of one schema node in document order: the block
        chain gives the partial order, the short-pointer chain recovers
        the order inside each block."""
        for block in schema_node.blocks():
            yield from block.iter_in_order()

    def descendants_of(self, ancestor: NodeDescriptor,
                       schema_node: SchemaNode
                       ) -> Iterator[NodeDescriptor]:
        """Instances of *schema_node* below *ancestor*, by label test."""
        for descriptor in self.scan_schema_node(schema_node):
            if is_ancestor(ancestor.nid, descriptor.nid):
                yield descriptor

    # ==================================================================
    # Updates
    #
    # Each public mutation validates its arguments completely before
    # touching any structure (a refused update raises ``UpdateError``
    # and changes nothing), then runs under ``_autocommit``: with a
    # transaction manager attached, the operation is write-ahead
    # logged and grouped — into the open transaction if there is one,
    # into a single-operation autocommit transaction otherwise.

    def _children_of(self, parent: NodeDescriptor) -> list[NodeDescriptor]:
        return self.children(parent)

    def _autocommit(self):
        manager = self.txn_manager
        if manager is None or not manager.autocommit_needed():
            return nullcontext()
        return manager.transaction()

    def insert_child(self, parent: NodeDescriptor, index: int,
                     name: QName | None = None,
                     text: str | None = None) -> NodeDescriptor:
        """Insert a new element (give *name*) or text node (give
        *text*) at *index* among *parent*'s children.

        No existing node is relabeled and no descriptor moves between
        blocks except by an explicit split of the target block.
        """
        if (name is None) == (text is None):
            raise UpdateError("give exactly one of name= or text=")
        if parent.is_text_enabled:
            raise UpdateError("text and attribute nodes have no children")
        if parent.block is None:
            raise UpdateError(f"{parent!r} is not stored in this engine")
        siblings = self._children_of(parent)
        if not 0 <= index <= len(siblings):
            raise UpdateError(
                f"index {index} out of range 0..{len(siblings)}")
        with self._autocommit():
            return self._insert_child(parent, index, siblings, name, text)

    def _insert_child(self, parent: NodeDescriptor, index: int,
                      siblings: list[NodeDescriptor],
                      name: QName | None,
                      text: str | None) -> NodeDescriptor:
        left = siblings[index - 1] if index > 0 else None
        right = siblings[index] if index < len(siblings) else None
        nid = self.numbering.child_label(
            parent.nid,
            left.nid if left is not None else None,
            right.nid if right is not None else None)
        manager = self.txn_manager
        if manager is not None and manager.logging:
            # Write-ahead: the logical record (with the label the
            # mutation is about to assign) hits the log first.
            manager.log_insert(parent, index, name, text, nid)
        if name is not None:
            schema_node = self.schema.get_or_add_child(
                parent.schema_node, name, "element")
            descriptor = self._new_descriptor(schema_node, nid)
        else:
            schema_node = self.schema.get_or_add_child(
                parent.schema_node, None, "text")
            descriptor = self._new_descriptor(schema_node, nid, value=text)
        descriptor.parent = parent
        descriptor.left_sibling = left
        descriptor.right_sibling = right
        if left is not None:
            left.right_sibling = descriptor
            self.checkpoints.mark_descriptor(left)
        if right is not None:
            right.left_sibling = descriptor
            self.checkpoints.mark_descriptor(right)
        self._place_descriptor(descriptor)
        self._register_child_pointer(parent, descriptor)
        if self.indexes.active:
            self.indexes.note_added(descriptor)
        self.insert_count += 1
        if obs.RECORDING:
            obs.REGISTRY.counter("storage.inserts").inc()
        if manager is not None and manager.logging:
            manager.applied_insert(descriptor)
        return descriptor

    def set_attribute(self, parent: NodeDescriptor, name: QName,
                      value: str,
                      replace: bool = False) -> NodeDescriptor:
        """Attach an attribute descriptor (one per name per element).

        With ``replace=True`` an already-present attribute of the same
        name has its value overwritten in place — the descriptor keeps
        its label and block slot, so no relabeling and no block motion
        (Proposition 1 extends to value updates).  Without it, a
        duplicate raises.
        """
        if parent.node_type != "element":
            raise UpdateError(
                f"only element nodes take attributes, not "
                f"{parent.node_type}")
        if parent.block is None:
            raise UpdateError(f"{parent!r} is not stored in this engine")
        schema_node = self.schema.get_or_add_child(
            parent.schema_node, name, "attribute")
        index = parent.schema_node.child_index(schema_node)
        existing = parent.first_child_for(index)
        if existing is not None and not replace:
            raise UpdateError(
                f"attribute {name.lexical} already present")
        with self._autocommit():
            return self._set_attribute(parent, name, value, schema_node,
                                       index, existing)

    def _set_attribute(self, parent: NodeDescriptor, name: QName,
                       value: str, schema_node: SchemaNode, index: int,
                       existing: NodeDescriptor | None) -> NodeDescriptor:
        manager = self.txn_manager
        logged = manager is not None and manager.logging
        if existing is not None:
            if logged:
                manager.log_set_attribute(parent, name, value,
                                          existing.nid, replace=True)
            old_value = existing.value
            existing.value = value
            self.stats.note_value_changed(existing, old_value)
            self.checkpoints.mark_descriptor(existing)
            if self.indexes.active:
                self.indexes.note_value_changed(existing)
            if logged:
                manager.applied_set_attribute(existing, old_value,
                                              created=False)
            return existing
        children = self._children_of(parent)
        right = children[0] if children else None
        left = None
        for attribute in self.attributes(parent):
            if left is None or before(left.nid, attribute.nid):
                left = attribute
        nid = self.numbering.child_label(
            parent.nid,
            left.nid if left is not None else None,
            right.nid if right is not None else None)
        if logged:
            manager.log_set_attribute(parent, name, value, nid,
                                      replace=False)
        descriptor = self._new_descriptor(schema_node, nid, value=value)
        descriptor.parent = parent
        self._place_descriptor(descriptor)
        parent.children_by_schema[index] = descriptor
        if self.indexes.active:
            self.indexes.note_added(descriptor)
        self.insert_count += 1
        if obs.RECORDING:
            obs.REGISTRY.counter("storage.inserts").inc()
        if logged:
            manager.applied_set_attribute(descriptor, None, created=True)
        return descriptor

    def delete_subtree(self, descriptor: NodeDescriptor) -> int:
        """Remove a node and its whole subtree; returns nodes removed."""
        if descriptor is self.document:
            raise UpdateError("cannot delete the document node")
        if descriptor.block is None:
            raise UpdateError(
                f"{descriptor!r} is not stored (already deleted?)")
        with self._autocommit():
            manager = self.txn_manager
            if manager is not None and manager.logging:
                manager.log_delete(descriptor)
            return self._delete_subtree(descriptor)

    def _delete_subtree(self, descriptor: NodeDescriptor) -> int:
        removed = 0
        for attribute in list(self.attributes(descriptor)):
            self._remove_descriptor(attribute)
            removed += 1
        for child in list(self.children(descriptor)):
            removed += self._delete_subtree(child)
        self._unlink_from_siblings(descriptor)
        self._remove_descriptor(descriptor)
        self.delete_count += 1
        if obs.RECORDING:
            obs.REGISTRY.counter("storage.deletes").inc()
        return removed + 1

    # ==================================================================
    # Index DDL
    #
    # Declarations follow the same discipline as data mutations: full
    # validation first (``UpdateError`` changes nothing), then a
    # write-ahead CREATE_INDEX/DROP_INDEX record under autocommit, then
    # the in-memory effect.  Index *contents* are derived state — the
    # build is one block-list scan, and recovery re-derives it.

    def create_index(self, path: str, kind: str = "value",
                     value_type: str = "string"):
        """Declare a secondary index over the descriptive schema.

        ``kind="value"`` indexes the §4 typed values of one attribute
        or element schema path (``library/book/@year``); ``kind="path"``
        materializes the descriptor set of a predicate-free query path
        (``//author``).  Returns the built index.
        """
        definition = self.indexes.validate(path, kind, value_type)
        with self._autocommit():
            manager = self.txn_manager
            logged = manager is not None and manager.logging
            if logged:
                manager.log_create_index(definition)
            index = self.indexes.install(definition)
            if logged:
                manager.applied_create_index(definition)
            return index

    def drop_index(self, path: str, kind: str = "value"):
        """Drop a declared index; returns its definition."""
        definition = self.indexes.find(path, kind)
        with self._autocommit():
            manager = self.txn_manager
            logged = manager is not None and manager.logging
            if logged:
                manager.log_drop_index(definition)
            self.indexes.uninstall(definition)
            if logged:
                manager.applied_drop_index(definition)
            return definition

    # -- inverse operations (transaction rollback) ----------------------

    def _undo_set_value(self, descriptor: NodeDescriptor,
                        old_value: str | None) -> None:
        """Restore an overwritten attribute value (no logging)."""
        overwritten = descriptor.value
        descriptor.value = old_value
        self.stats.note_value_changed(descriptor, overwritten)
        self.checkpoints.mark_descriptor(descriptor)
        if self.indexes.active:
            self.indexes.note_value_changed(descriptor)

    def _undo_insert(self, descriptor: NodeDescriptor) -> None:
        """Take back a single inserted descriptor (no logging)."""
        if descriptor.node_type != "attribute":
            self._unlink_from_siblings(descriptor)
        self._remove_descriptor(descriptor)

    def _restore_subtree(self, entries: list[tuple]) -> int:
        """Rebuild a deleted subtree label-exactly from a snapshot.

        *entries* come in document order (parents first); each is
        ``(schema_node, nid, value, parent_key)`` where *parent_key*
        is a live descriptor for the subtree root and the nid symbols
        of an earlier entry below it.  Sibling positions are recovered
        from the labels alone — which is exactly why labels make
        inverse operations cheap.
        """
        restored: dict[tuple, NodeDescriptor] = {}
        for schema_node, nid, value, parent_key in entries:
            if isinstance(parent_key, NodeDescriptor):
                parent = parent_key
            else:
                parent = restored[parent_key]
            descriptor = self._new_descriptor(schema_node, nid,
                                              value=value)
            descriptor.parent = parent
            if descriptor.node_type != "attribute":
                left: NodeDescriptor | None = None
                right: NodeDescriptor | None = None
                for sibling in self.children(parent):
                    if before(sibling.nid, nid):
                        left = sibling
                    else:
                        right = sibling
                        break
                descriptor.left_sibling = left
                descriptor.right_sibling = right
                if left is not None:
                    left.right_sibling = descriptor
                    self.checkpoints.mark_descriptor(left)
                if right is not None:
                    right.left_sibling = descriptor
                    self.checkpoints.mark_descriptor(right)
            self._place_descriptor(descriptor)
            self._register_child_pointer(parent, descriptor)
            if self.indexes.active:
                self.indexes.note_added(descriptor)
            restored[nid.symbols()] = descriptor
        return len(restored)

    def _unlink_from_siblings(self, descriptor: NodeDescriptor) -> None:
        parent = descriptor.parent
        left, right = descriptor.left_sibling, descriptor.right_sibling
        if left is not None:
            left.right_sibling = right
            self.checkpoints.mark_descriptor(left)
        if right is not None:
            right.left_sibling = left
            self.checkpoints.mark_descriptor(right)
        if parent is not None:
            schema_node = descriptor.schema_node
            index = parent.schema_node.child_index(schema_node)
            if parent.first_child_for(index) is descriptor:
                # The next instance of the same schema node, if any.
                node = right
                replacement = None
                while node is not None:
                    if node.schema_node is schema_node:
                        replacement = node
                        break
                    node = node.right_sibling
                if replacement is None:
                    parent.children_by_schema.pop(index, None)
                else:
                    parent.children_by_schema[index] = replacement
        descriptor.left_sibling = None
        descriptor.right_sibling = None

    def _remove_descriptor(self, descriptor: NodeDescriptor) -> None:
        faults.fire("descriptor.unlink")
        block = descriptor.block
        if block is None:
            raise StorageError(f"{descriptor!r} is not stored")
        if self.indexes.active:
            # Siblings are already unlinked (non-attribute nodes), so
            # recomputed string values no longer see this descriptor.
            self.indexes.note_removed(descriptor)
        schema_node = descriptor.schema_node
        if descriptor.node_type == "attribute" and \
                descriptor.parent is not None:
            index = descriptor.parent.schema_node.child_index(schema_node)
            if descriptor.parent.first_child_for(index) is descriptor:
                descriptor.parent.children_by_schema.pop(index, None)
        block.remove(descriptor)
        schema_node.descriptor_count -= 1
        self.stats.note_removed(descriptor)
        if block.is_empty:
            self._unlink_block(block)
            self.checkpoints.drop(block)
        else:
            self.checkpoints.mark(block)

    def _unlink_block(self, block: Block) -> None:
        schema_node = block.schema_node
        if block.prev_block is not None:
            block.prev_block.next_block = block.next_block
        else:
            schema_node.first_block = block.next_block
        if block.next_block is not None:
            block.next_block.prev_block = block.prev_block
        else:
            schema_node.last_block = block.prev_block

    def _register_child_pointer(self, parent: NodeDescriptor,
                                child: NodeDescriptor) -> None:
        """Maintain the first-child-by-schema pointer of §9.2."""
        index = parent.schema_node.child_index(child.schema_node)
        current = parent.first_child_for(index)
        if current is None or before(child.nid, current.nid):
            parent.children_by_schema[index] = child

    # ==================================================================
    # Statistics and invariants

    def node_count(self) -> int:
        return sum(node.descriptor_count
                   for node in self.schema.iter_nodes())

    def block_count(self) -> int:
        return sum(node.block_count() for node in self.schema.iter_nodes())

    def size_bytes(self) -> int:
        total = 0
        for schema_node in self.schema.iter_nodes():
            for block in schema_node.blocks():
                total += block.size_bytes()
        return total

    def blocks_per_schema_node(self) -> dict[str, int]:
        return {node.path or "#document": node.block_count()
                for node in self.schema.iter_nodes()}

    def check_invariants(self) -> None:
        """Re-verify the §9 invariants (used heavily by the tests)."""
        for schema_node in self.schema.iter_nodes():
            previous_block_last: NodeDescriptor | None = None
            for block in schema_node.blocks():
                ordered = list(block.iter_in_order())
                if len(ordered) != block.count:
                    raise StorageError(
                        f"{block!r}: chain length {len(ordered)} != "
                        f"count {block.count}")
                for a, b in zip(ordered, ordered[1:]):
                    if not before(a.nid, b.nid):
                        raise StorageError(
                            f"{block!r}: in-block chain out of order")
                if ordered and previous_block_last is not None:
                    if not before(previous_block_last.nid, ordered[0].nid):
                        raise StorageError(
                            f"{block!r}: partial order across blocks "
                            "violated")
                if ordered:
                    previous_block_last = ordered[-1]
                for descriptor in ordered:
                    if descriptor.schema_node is not schema_node:
                        raise StorageError(
                            f"{descriptor!r} stored under the wrong "
                            "schema node")
        if self.document is not None:
            self._check_tree_labels(self.document)

    def _check_tree_labels(self, descriptor: NodeDescriptor) -> None:
        from repro.storage.labels import is_parent
        previous = None
        for child in self.attributes(descriptor) + \
                self.children(descriptor):
            if not is_parent(descriptor.nid, child.nid):
                raise StorageError(
                    f"label of {child!r} is not a child label of "
                    f"{descriptor!r}")
            if child.parent is not descriptor:
                raise StorageError(f"{child!r} has the wrong parent")
        for child in self.children(descriptor):
            if previous is not None and not before(previous.nid, child.nid):
                raise StorageError("sibling labels out of order")
            previous = child
            self._check_tree_labels(child)

    def __repr__(self) -> str:
        return (f"StorageEngine({self.node_count()} nodes, "
                f"{self.block_count()} blocks, "
                f"{self.schema.node_count()} schema nodes)")
