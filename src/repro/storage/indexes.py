"""Secondary indexes over the descriptive schema.

Real Sedna layers two families of secondary indexes on top of the §9
physical design, and this module reproduces both:

* a **typed-value index** per (schema node, attribute-or-text): keys
  are the §4 typed values of the indexed attribute (or the string
  value of the indexed element), obtained through the XML Schema
  simple-type machinery (``repro.xsdtypes``); postings are lists of
  node descriptors kept in document order by the memoized binary nid
  key, maintained with bisect.  Probes: equality, range, existence.
* a **path index** materializing the merged, document-ordered
  descriptor set of every schema node matched by a predicate-free
  path, so ``//x`` and deep child chains resolve without the
  concatenate-and-sort step of the scan strategy.

Index *definitions* are durable state: DDL is write-ahead logged
(``CREATE_INDEX``/``DROP_INDEX`` records) and checkpoint images persist
the definitions.  Index *contents* are derived state: they are rebuilt
from the block lists on image load and reconciled after WAL replay —
:func:`repro.storage.recovery.recover` ends by checking that the
incrementally maintained indexes bisimulate a from-scratch rebuild.

Incremental maintenance hangs off the engine's mutation paths
(``insert_child``/``set_attribute``/``delete_subtree`` and their
rollback inverses) through three ``note_*`` hooks; each hook and each
full (re)build is a named crash point (``index.update`` /
``index.rebuild``) for the fault-injection matrix.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.errors import StorageError, TypeSystemError, UpdateError
from repro.storage import faults
from repro.xsdtypes.registry import builtin

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.paths import Step
    from repro.storage.descriptor import NodeDescriptor
    from repro.storage.dschema import SchemaNode
    from repro.storage.engine import StorageEngine

VALUE = "value"
PATH = "path"
KINDS = (VALUE, PATH)

#: Posting-list slot for owners whose lexical value does not parse
#: under the index's simple type: they stay probe-able by existence
#: (matching the evaluator's untyped predicate semantics) but never
#: match an equality or range probe.
_UNTYPED = object()
_MISSING = object()


@dataclass(frozen=True)
class IndexDefinition:
    """The durable part of an index: what WAL records and checkpoint
    images carry.  Contents are always derivable from the blocks."""

    path: str
    kind: str = VALUE
    value_type: str = "string"

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.path)

    def as_dict(self) -> dict[str, str]:
        return {"path": self.path, "kind": self.kind,
                "value_type": self.value_type}

    def __repr__(self) -> str:
        suffix = f", {self.value_type}" if self.kind == VALUE else ""
        return f"IndexDefinition({self.kind}:{self.path}{suffix})"


def _doc_order_key(descriptor: "NodeDescriptor") -> bytes:
    return descriptor.nid.sort_key()


def _insert_in_order(postings: "list[NodeDescriptor]",
                     descriptor: "NodeDescriptor") -> None:
    insort_right(postings, descriptor, key=_doc_order_key)


def _remove_in_order(postings: "list[NodeDescriptor]",
                     descriptor: "NodeDescriptor") -> None:
    key = descriptor.nid.sort_key()
    i = bisect_left(postings, key, key=_doc_order_key)
    if i < len(postings) and postings[i].nid.sort_key() == key:
        del postings[i]


class ValueIndex:
    """A typed-value index on one attribute or element schema path.

    For an attribute path (``library/book/@year``) the *owners* in the
    postings are the parent elements — exactly the nodes a
    ``[@year...]`` predicate selects.  For an element path
    (``library/book/title``) the owners are the elements themselves,
    keyed by their string value; a ``[title='...']`` predicate on the
    parent probes this index and maps owners to parents.
    """

    kind = VALUE

    def __init__(self, engine: "StorageEngine",
                 definition: IndexDefinition,
                 value_node: "SchemaNode") -> None:
        self.engine = engine
        self.definition = definition
        #: The schema node whose instances carry the indexed value.
        self.value_node = value_node
        self.attribute = value_node.node_type == "attribute"
        #: The schema node of the descriptors the postings hold.
        self.owner_node = (value_node.parent if self.attribute
                           else value_node)
        self.simple_type = builtin(definition.value_type)
        # typed key -> owners in document order (bisect-maintained).
        self._postings: dict[object, list["NodeDescriptor"]] = {}
        # Sorted distinct typed keys, for range probes.
        self._keys: list = []
        # Every owner (typed or not), in document order: existence.
        self._all: list["NodeDescriptor"] = []
        # owner nid key -> its current typed key (or _UNTYPED).
        self._key_of: dict[bytes, object] = {}

    # -- keys -----------------------------------------------------------

    def parse_key(self, lexical: str):
        """Map a lexical value into the §4 value space (raises
        ``TypeSystemError`` when it has no typed value)."""
        return self.simple_type.parse(lexical)

    def _typed(self, lexical: Optional[str]):
        try:
            return self.simple_type.parse(lexical or "")
        except TypeSystemError:
            return _UNTYPED

    # -- maintenance ----------------------------------------------------

    def add(self, owner: "NodeDescriptor",
            lexical: Optional[str]) -> None:
        okey = owner.nid.sort_key()
        if okey in self._key_of:
            self.update(owner, lexical)
            return
        key = self._typed(lexical)
        self._key_of[okey] = key
        _insert_in_order(self._all, owner)
        if key is not _UNTYPED:
            posting = self._postings.get(key)
            if posting is None:
                self._postings[key] = [owner]
                insort_right(self._keys, key)
            else:
                _insert_in_order(posting, owner)

    def remove(self, owner: "NodeDescriptor") -> None:
        okey = owner.nid.sort_key()
        key = self._key_of.pop(okey, _MISSING)
        if key is _MISSING:
            return
        _remove_in_order(self._all, owner)
        if key is not _UNTYPED:
            posting = self._postings[key]
            _remove_in_order(posting, owner)
            if not posting:
                del self._postings[key]
                i = bisect_left(self._keys, key)
                del self._keys[i]

    def update(self, owner: "NodeDescriptor",
               lexical: Optional[str]) -> None:
        okey = owner.nid.sort_key()
        if self._key_of.get(okey, _MISSING) is _MISSING:
            self.add(owner, lexical)
            return
        if self._key_of[okey] == self._typed(lexical) \
                and self._key_of[okey] is not _UNTYPED:
            return
        self.remove(owner)
        self.add(owner, lexical)

    def reindex(self, owner: "NodeDescriptor") -> None:
        """Recompute an element owner's key from its current string
        value (called when a text child appears or disappears)."""
        self.update(owner, self.engine.string_value(owner))

    def build(self) -> None:
        """Populate from scratch by one block-list scan (document
        order, so every insertion lands at the tail)."""
        faults.fire("index.rebuild")
        self._postings.clear()
        self._keys.clear()
        self._all.clear()
        self._key_of.clear()
        engine = self.engine
        if self.attribute:
            for attr in engine.scan_schema_node(self.value_node):
                if attr.parent is not None:
                    self.add(attr.parent, attr.value)
        else:
            for owner in engine.scan_schema_node(self.value_node):
                self.add(owner, engine.string_value(owner))

    # -- probes ---------------------------------------------------------

    def _probed(self, result: "list[NodeDescriptor]"
                ) -> "list[NodeDescriptor]":
        if obs.RECORDING:
            obs.REGISTRY.counter("index.probes").inc()
            if result:
                obs.REGISTRY.counter("index.hits").inc()
        return result

    def probe_eq(self, key) -> "list[NodeDescriptor]":
        """Owners whose typed value equals *key* (document order)."""
        return self._probed(list(self._postings.get(key, ())))

    def probe_range(self, low=None, high=None, *,
                    inclusive_low: bool = True,
                    inclusive_high: bool = True
                    ) -> "list[NodeDescriptor]":
        """Owners with typed value in the given range (either bound
        may be None for an open end); document order."""
        keys = self._keys
        start = 0
        if low is not None:
            start = bisect_left(keys, low)
            if not inclusive_low:
                while start < len(keys) and keys[start] == low:
                    start += 1
        stop = len(keys)
        if high is not None:
            stop = bisect_left(keys, high)
            if inclusive_high:
                while stop < len(keys) and keys[stop] == high:
                    stop += 1
        out: list["NodeDescriptor"] = []
        for key in keys[start:stop]:
            out.extend(self._postings[key])
        out.sort(key=_doc_order_key)
        return self._probed(out)

    def probe_exists(self) -> "list[NodeDescriptor]":
        """Every owner carrying the indexed attribute/element —
        the ``[@name]`` / ``[name]`` existence semantics."""
        return self._probed(list(self._all))

    # -- introspection --------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {"kind": self.kind, "path": self.definition.path,
                "value_type": self.definition.value_type,
                "entries": len(self._all),
                "distinct_keys": len(self._keys)}

    def snapshot(self) -> dict[str, object]:
        """Canonical content for bisimulation checks (recovery)."""
        return {
            "all": [d.nid.symbols() for d in self._all],
            "postings": {
                str(key): [d.nid.symbols() for d in posting]
                for key, posting in self._postings.items()},
        }

    def __repr__(self) -> str:
        return (f"ValueIndex({self.definition.path!r}, "
                f"{self.definition.value_type}, "
                f"{len(self._all)} entries)")


class PathIndex:
    """A materialized descriptor set for one predicate-free path.

    The covered schema-node set is re-derived whenever the descriptive
    schema grows (a new schema node starts empty, so the postings stay
    complete under incremental maintenance).
    """

    kind = PATH

    def __init__(self, engine: "StorageEngine",
                 definition: IndexDefinition,
                 steps: "tuple[Step, ...]") -> None:
        self.engine = engine
        self.definition = definition
        self.steps = steps
        self._covered: frozenset[int] = frozenset()
        self._matched_version = -1
        self._postings: list["NodeDescriptor"] = []

    def covered_ids(self) -> frozenset[int]:
        """``id()``s of the schema nodes this path matches, re-matched
        lazily against the current schema version."""
        schema = self.engine.schema
        if self._matched_version != schema.version:
            from repro.query.planner import match_schema_nodes
            nodes = match_schema_nodes(schema.root, self.steps)
            self._covered = frozenset(id(node) for node in nodes)
            self._matched_version = schema.version
        return self._covered

    def covers_exactly(self, schema_nodes) -> bool:
        return self.covered_ids() == frozenset(
            id(node) for node in schema_nodes)

    def add(self, descriptor: "NodeDescriptor") -> None:
        _insert_in_order(self._postings, descriptor)

    def remove(self, descriptor: "NodeDescriptor") -> None:
        _remove_in_order(self._postings, descriptor)

    def build(self) -> None:
        faults.fire("index.rebuild")
        engine = self.engine
        covered = self.covered_ids()
        merged: list["NodeDescriptor"] = []
        for schema_node in engine.schema.iter_nodes():
            if id(schema_node) in covered:
                merged.extend(engine.scan_schema_node(schema_node))
        merged.sort(key=_doc_order_key)
        self._postings = merged

    def probe(self) -> "list[NodeDescriptor]":
        """The pre-merged, document-ordered result set."""
        result = list(self._postings)
        if obs.RECORDING:
            obs.REGISTRY.counter("index.probes").inc()
            if result:
                obs.REGISTRY.counter("index.hits").inc()
        return result

    def stats(self) -> dict[str, object]:
        return {"kind": self.kind, "path": self.definition.path,
                "entries": len(self._postings),
                "schema_nodes_covered": len(self.covered_ids())}

    def snapshot(self) -> dict[str, object]:
        return {"postings": [d.nid.symbols() for d in self._postings]}

    def __repr__(self) -> str:
        return (f"PathIndex({self.definition.path!r}, "
                f"{len(self._postings)} entries)")


class IndexManager:
    """All declared indexes of one engine, plus the maintenance hooks.

    ``epoch`` counts DDL events; cached query plans stamp the epoch
    they were compiled under, and the planner re-checks a plan whose
    epoch is stale — so a ``CREATE INDEX`` invalidates exactly the
    plans whose strategy it changes.
    """

    def __init__(self, engine: "StorageEngine") -> None:
        self.engine = engine
        self.epoch = 0
        #: Cheap guard read by the engine's mutation hot paths.
        self.active = False
        self._indexes: dict[tuple[str, str],
                            ValueIndex | PathIndex] = {}
        self._by_value_node: dict[int, ValueIndex] = {}
        self._path_indexes: list[PathIndex] = []

    # -- DDL ------------------------------------------------------------

    def validate(self, path: str, kind: str = VALUE,
                 value_type: str = "string") -> IndexDefinition:
        """Resolve and normalize a DDL request, raising ``UpdateError``
        before any state (or the WAL) is touched."""
        if kind not in KINDS:
            raise UpdateError(f"unknown index kind {kind!r} "
                              f"(expected one of {KINDS})")
        normalized = path.strip()
        if kind == VALUE:
            if "//" in normalized or "[" in normalized:
                raise UpdateError(
                    "a value index covers one exact schema path "
                    "(no // and no predicates)")
            normalized = normalized.lstrip("/")
            node = self.engine.schema.find_path(normalized)
            if node is None:
                raise UpdateError(
                    f"path {path!r} does not resolve in the "
                    "descriptive schema")
            if node.node_type not in ("attribute", "element"):
                raise UpdateError(
                    "value indexes cover attribute or element paths, "
                    f"not {node.node_type}")
            try:
                builtin(value_type)
            except TypeSystemError as error:
                raise UpdateError(str(error)) from error
            definition = IndexDefinition(normalized, VALUE, value_type)
        else:
            if not normalized.startswith("/"):
                normalized = "/" + normalized
            from repro.errors import QueryError
            from repro.query.paths import parse_path
            try:
                parsed = parse_path(normalized)
            except QueryError as error:
                raise UpdateError(str(error)) from error
            if any(step.predicates for step in parsed.steps):
                raise UpdateError(
                    "path indexes take predicate-free paths")
            definition = IndexDefinition(normalized, PATH, "")
        if definition.key in self._indexes:
            raise UpdateError(
                f"index {definition.kind}:{definition.path} "
                "already declared")
        return definition

    def install(self, definition: IndexDefinition
                ) -> ValueIndex | PathIndex:
        """Register *definition* and build its contents (one scan)."""
        if definition.key in self._indexes:
            raise StorageError(f"{definition!r} already installed")
        if definition.kind == VALUE:
            node = self.engine.schema.find_path(definition.path)
            if node is None:
                raise StorageError(
                    f"{definition!r} no longer resolves")
            index: ValueIndex | PathIndex = ValueIndex(
                self.engine, definition, node)
        else:
            from repro.query.paths import parse_path
            index = PathIndex(self.engine, definition,
                              parse_path(definition.path).steps)
        start = time.perf_counter_ns() if obs.RECORDING else 0
        index.build()
        if obs.RECORDING:
            obs.REGISTRY.counter("index.maintenance_ns").inc(
                time.perf_counter_ns() - start)
        self._indexes[definition.key] = index
        self._rebuild_tables()
        self.epoch += 1
        return index

    def uninstall(self, definition: IndexDefinition) -> None:
        if self._indexes.pop(definition.key, None) is None:
            raise StorageError(f"{definition!r} is not installed")
        self._rebuild_tables()
        self.epoch += 1

    def _rebuild_tables(self) -> None:
        self._by_value_node = {
            id(index.value_node): index
            for index in self._indexes.values()
            if isinstance(index, ValueIndex)}
        self._path_indexes = [index for index in self._indexes.values()
                              if isinstance(index, PathIndex)]
        self.active = bool(self._indexes)

    def find(self, path: str, kind: str = VALUE) -> IndexDefinition:
        """The installed definition for a (possibly unnormalized) DDL
        path, raising ``UpdateError`` when absent."""
        for candidate in (path.strip(), path.strip().lstrip("/"),
                          "/" + path.strip().lstrip("/")):
            index = self._indexes.get((kind, candidate))
            if index is not None:
                return index.definition
        raise UpdateError(f"no {kind} index declared on {path!r}")

    def get(self, path: str, kind: str = VALUE
            ) -> ValueIndex | PathIndex:
        return self._indexes[self.find(path, kind).key]

    def definitions(self) -> list[IndexDefinition]:
        """Declaration order — what checkpoints persist and recovery
        re-installs."""
        return [index.definition for index in self._indexes.values()]

    def __len__(self) -> int:
        return len(self._indexes)

    # -- incremental maintenance (engine mutation hooks) ---------------

    def note_added(self, descriptor: "NodeDescriptor") -> None:
        """A descriptor was linked into the tree (insert, attribute
        creation, or rollback restore)."""
        faults.fire("index.update")
        if not obs.RECORDING:
            self._note_added(descriptor)
            return
        start = time.perf_counter_ns()
        try:
            self._note_added(descriptor)
        finally:
            elapsed = time.perf_counter_ns() - start
            obs.REGISTRY.counter("index.maintenance_ns").inc(elapsed)
            obs.REGISTRY.histogram("index.maintenance.ns").observe(
                elapsed)

    def _note_added(self, descriptor: "NodeDescriptor") -> None:
        index = self._by_value_node.get(id(descriptor.schema_node))
        if index is not None:
            if index.attribute:
                if descriptor.parent is not None:
                    index.add(descriptor.parent, descriptor.value)
            else:
                index.add(descriptor,
                          self.engine.string_value(descriptor))
        if descriptor.node_type == "text" \
                and descriptor.parent is not None:
            parent = descriptor.parent
            owner_index = self._by_value_node.get(
                id(parent.schema_node))
            if owner_index is not None and not owner_index.attribute:
                owner_index.reindex(parent)
        node_id = id(descriptor.schema_node)
        for path_index in self._path_indexes:
            if node_id in path_index.covered_ids():
                path_index.add(descriptor)

    def note_removed(self, descriptor: "NodeDescriptor") -> None:
        """A descriptor is leaving the tree (delete or rollback undo);
        called after sibling unlinking, so recomputed string values no
        longer see it."""
        faults.fire("index.update")
        if not obs.RECORDING:
            self._note_removed(descriptor)
            return
        start = time.perf_counter_ns()
        try:
            self._note_removed(descriptor)
        finally:
            elapsed = time.perf_counter_ns() - start
            obs.REGISTRY.counter("index.maintenance_ns").inc(elapsed)
            obs.REGISTRY.histogram("index.maintenance.ns").observe(
                elapsed)

    def _note_removed(self, descriptor: "NodeDescriptor") -> None:
        index = self._by_value_node.get(id(descriptor.schema_node))
        if index is not None:
            if index.attribute:
                if descriptor.parent is not None:
                    index.remove(descriptor.parent)
            else:
                index.remove(descriptor)
        if descriptor.node_type == "text" \
                and descriptor.parent is not None:
            parent = descriptor.parent
            owner_index = self._by_value_node.get(
                id(parent.schema_node))
            if owner_index is not None and not owner_index.attribute:
                owner_index.reindex(parent)
        node_id = id(descriptor.schema_node)
        for path_index in self._path_indexes:
            if node_id in path_index.covered_ids():
                path_index.remove(descriptor)

    def note_value_changed(self, descriptor: "NodeDescriptor") -> None:
        """An attribute descriptor's value was overwritten in place."""
        faults.fire("index.update")
        index = self._by_value_node.get(id(descriptor.schema_node))
        if index is None or not index.attribute \
                or descriptor.parent is None:
            return
        if not obs.RECORDING:
            index.update(descriptor.parent, descriptor.value)
            return
        start = time.perf_counter_ns()
        try:
            index.update(descriptor.parent, descriptor.value)
        finally:
            elapsed = time.perf_counter_ns() - start
            obs.REGISTRY.counter("index.maintenance_ns").inc(elapsed)
            obs.REGISTRY.histogram("index.maintenance.ns").observe(
                elapsed)

    # -- planner integration --------------------------------------------

    def plan_probe(self, schema_node: "SchemaNode", predicate):
        """An index probe answering *predicate* on instances of
        *schema_node*, or None.

        Returns ``(mode, index, typed_key, via_parent)`` with *mode*
        ``"eq"`` or ``"exists"``.  The probe is offered only when the
        predicate's local name resolves to exactly one schema child —
        with several same-named children (different namespaces) the
        single-path index would under-report the evaluator's
        local-name semantics.
        """
        from repro.query.paths import (AttributePredicate,
                                       ChildPredicate)
        if isinstance(predicate, AttributePredicate):
            candidates = [child for child
                          in schema_node.attribute_children()
                          if child.name.local == predicate.name]
            via_parent = False
        elif isinstance(predicate, ChildPredicate):
            candidates = [child for child
                          in schema_node.element_children()
                          if child.name is not None
                          and child.name.local == predicate.name]
            via_parent = True
        else:
            return None
        if len(candidates) != 1:
            return None
        index = self._by_value_node.get(id(candidates[0]))
        if index is None or index.attribute is via_parent:
            return None
        if predicate.value is None:
            return ("exists", index, None, via_parent)
        try:
            key = index.parse_key(predicate.value)
        except TypeSystemError:
            # The literal has no typed value under the index's type:
            # typed equality can never hold, but the scan route's
            # untyped string comparison still could — stay off the
            # index rather than change semantics.
            return None
        return ("eq", index, key, via_parent)

    def path_probe(self, schema_nodes) -> Optional[PathIndex]:
        """A path index covering exactly the plan's matched set."""
        for path_index in self._path_indexes:
            if path_index.covers_exactly(schema_nodes):
                return path_index
        return None

    # -- rebuild / verification ----------------------------------------

    def rebuild_all(self) -> None:
        """Repopulate every index from the block lists (bulk load,
        image load)."""
        for index in self._indexes.values():
            index.build()

    def _fresh_instance(self, definition: IndexDefinition
                        ) -> ValueIndex | PathIndex:
        if definition.kind == VALUE:
            node = self.engine.schema.find_path(definition.path)
            if node is None:
                raise StorageError(f"{definition!r} no longer resolves")
            return ValueIndex(self.engine, definition, node)
        from repro.query.paths import parse_path
        return PathIndex(self.engine, definition,
                         parse_path(definition.path).steps)

    def verify_consistency(self) -> int:
        """Assert every live index bisimulates a from-scratch rebuild
        (the recovery reconciliation step); returns the number checked."""
        for key, index in self._indexes.items():
            fresh = self._fresh_instance(index.definition)
            fresh.build()
            if fresh.snapshot() != index.snapshot():
                raise StorageError(
                    f"index {key[0]}:{key[1]} diverged from a "
                    "from-scratch rebuild")
        return len(self._indexes)

    def snapshot(self) -> dict[str, object]:
        return {f"{kind}:{path}": index.snapshot()
                for (kind, path), index in self._indexes.items()}

    def stats(self) -> list[dict[str, object]]:
        return [index.stats() for index in self._indexes.values()]

    def __repr__(self) -> str:
        return (f"IndexManager({len(self._indexes)} indexes, "
                f"epoch {self.epoch})")
