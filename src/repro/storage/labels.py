"""The Sedna numbering scheme of Section 9.3.

A numbering label is a finite sequence of symbols from a linearly
ordered alphabet Ω.  Labels encode the position of a node so that the
structural relations of the paper are answered by symbol comparison
alone:

* *document order* — lexicographic comparison of the symbol sequences
  (the paper's first rule);
* *equality* — sequence equality;
* *parent/ancestor* — prefix tests (the paper's third rule).

The concrete encoding: a label is a sequence of *components*, one per
tree level (Dewey style, after [19]).  Each component is a non-empty
digit string over ``0 .. base-1`` that never ends in digit ``0``; in
the flattened symbol sequence every component is terminated by the
separator symbol, which is Ω_min.  Because the separator is minimal,
lexicographic comparison of flattened labels is exactly document order,
and because digit strings are dense (between any two there is a third),
**insertions never relabel existing nodes** — Proposition 1, which the
test suite verifies with randomized update workloads.

The dense midpoint construction follows the classic fractional-indexing
algorithm generalized to an arbitrary base.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro import obs
from repro.errors import LabelError

#: The separator symbol Ω_min used in flattened label sequences.
SEPARATOR = 0

Component = tuple[int, ...]


def _validate_component(component: Component, base: int) -> None:
    if not component:
        raise LabelError("a label component must be non-empty")
    if component[-1] == 0:
        # A trailing zero would exhaust the gap below it: no string
        # orders strictly between (d,) and (d, 0).  The fractional
        # encoding therefore forbids it.
        raise LabelError(f"component {component} ends in digit 0")
    for digit in component:
        if not 0 <= digit < base:
            raise LabelError(
                f"digit {digit} out of range 0..{base - 1}")


@dataclass(frozen=True)
class NidLabel:
    """A numbering label: one digit-string component per tree level."""

    components: tuple[Component, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise LabelError("a label needs at least one component")
        # Labels are immutable, so the flattened symbol sequence is
        # computed once; it is on the hot path of every comparison.
        out: list[int] = []
        for component in self.components:
            out.extend(digit + 1 for digit in component)
            out.append(SEPARATOR)
        object.__setattr__(self, "_symbols", tuple(out))
        # The binary comparison key is built lazily: most labels are
        # only ever compared pairwise via symbols(), and the bytes key
        # pays off on bulk document-order sorts (index result sets).
        object.__setattr__(self, "_sort_key", None)

    @property
    def depth(self) -> int:
        return len(self.components)

    def symbols(self) -> tuple[int, ...]:
        """The flattened symbol sequence over Ω.

        Digits are shifted by +1 so that the separator (Ω_min = 0)
        is strictly smaller than every digit.
        """
        return self._symbols

    def sort_key(self) -> bytes:
        """Memoized binary document-order key.

        Each symbol is packed as a big-endian u16, so bytewise
        lexicographic order on the keys equals tuple order on
        :meth:`symbols` — sorting a large result set by ``sort_key()``
        is document order without per-comparison tuple walks.  (Symbols
        are digits shifted by +1, and the WAL already fixes u16 as the
        digit width, so the packing is exact for every usable base.)

        Labels are immutable and — Proposition 1 — never relabelled in
        place: a relabel, were one ever to happen, mints a *new*
        ``NidLabel`` whose key is recomputed on first use, so the cache
        can never go stale.
        """
        key = self._sort_key
        if key is None:
            symbols = self._symbols
            key = struct.pack(f">{len(symbols)}H", *symbols)
            object.__setattr__(self, "_sort_key", key)
        return key

    def parent_label(self) -> "NidLabel":
        if len(self.components) == 1:
            raise LabelError("a root label has no parent")
        return NidLabel(self.components[:-1])

    def __len__(self) -> int:
        """Label length in symbols — the size metric of the benchmarks."""
        return len(self.symbols())

    def __repr__(self) -> str:
        text = ".".join(
            "_".join(str(d) for d in component)
            for component in self.components)
        return f"NidLabel({text})"


# ----------------------------------------------------------------------
# The three relations of Section 9.3.


def before(x: NidLabel, y: NidLabel) -> bool:
    """``x << y`` in document order.

    Symbols are packed big-endian u16, so bytewise comparison of the
    memoized :meth:`NidLabel.sort_key` equals lexicographic comparison
    of the symbol sequences — one C-level ``bytes`` compare instead of
    a Python tuple walk.
    """
    return x.sort_key() < y.sort_key()


def equal(x: NidLabel, y: NidLabel) -> bool:
    """Equality in document order: identical symbol sequences."""
    return x.sort_key() == y.sort_key()


def is_parent(x: NidLabel, y: NidLabel) -> bool:
    """x is the parent of y: x's sequence is a proper prefix of y's and
    y has exactly one more component."""
    return (len(y.components) == len(x.components) + 1
            and y.components[:len(x.components)] == x.components)


def is_ancestor(x: NidLabel, y: NidLabel) -> bool:
    """x is a strict ancestor of y: component-prefix relation."""
    return (len(x.components) < len(y.components)
            and y.components[:len(x.components)] == x.components)


def compare(x: NidLabel, y: NidLabel) -> int:
    """-1/0/1 in document order."""
    sx, sy = x.sort_key(), y.sort_key()
    if sx == sy:
        return 0
    return -1 if sx < sy else 1


def is_ancestor_or_self_key(ancestor_key: bytes,
                            candidate_key: bytes) -> bool:
    """Ancestor-or-self decided on packed keys alone.

    Every component's symbols end with the separator (Ω_min = 0) and
    digits are shifted to ≥ 1, so a symbol sequence is a prefix of
    another iff the component tuples are — which makes the §9.3
    ancestor test a single ``bytes.startswith`` on the fixed-width
    packed keys, with no label object in sight.
    """
    return candidate_key.startswith(ancestor_key)


# ----------------------------------------------------------------------
# Dense component arithmetic (fractional indexing).


class NumberingScheme:
    """Label allocator for one document over an alphabet of *base*
    digits (plus the separator)."""

    def __init__(self, base: int = 256) -> None:
        if base < 3:
            raise LabelError("the alphabet needs at least 3 digits")
        self.base = base

    # -- component-level operations -------------------------------------

    def midpoint(self, low: Optional[Component],
                 high: Optional[Component]) -> Component:
        """A digit string strictly between *low* and *high*.

        ``None`` bounds mean -infinity / +infinity.  The result never
        ends in digit 0, so further midpoints always exist —
        the density property behind Proposition 1.
        """
        low_t = tuple(low) if low else ()
        high_t = tuple(high) if high else ()
        if high_t and low_t >= high_t:
            raise LabelError(f"bounds out of order: {low_t} >= {high_t}")
        result = self._mid(low_t, high_t)
        _validate_component(result, self.base)
        return result

    def _mid(self, a: Component, b: Component) -> Component:
        base = self.base
        if b:
            # Strip the common prefix.
            n = 0
            while n < len(b) and (a[n] if n < len(a) else -1) == b[n]:
                n += 1
            if n > 0:
                return b[:n] + self._mid(a[n:], b[n:])
        digit_a = a[0] if a else 0
        digit_b = b[0] if b else base
        if digit_b - digit_a > 1:
            mid = (digit_a + digit_b) // 2
            if mid == 0:
                mid = 1  # never produce the bare zero digit string
            return (mid,)
        if digit_a == digit_b:
            # Only possible when a is empty and b starts with digit 0:
            # descend into b's tail below that zero.
            return (0,) + self._mid((), b[1:])
        # Adjacent digits: recurse into a's tail with an open upper bound.
        if len(a) <= 1:
            return (digit_a,) + self._mid((), ())
        return (digit_a,) + self._mid(a[1:], ())

    def spread(self, count: int) -> list[Component]:
        """*count* evenly spaced sibling components for bulk loading.

        Components of one fixed digit length compare lexicographically
        like numbers, so spacing numbers evenly through the k-digit
        space yields short, ordered, gap-rich labels: one digit for
        fan-outs below half the base, k digits for fan-outs up to
        roughly ``base**k / 2``.
        """
        if count <= 0:
            return []
        capacity = self.base - 1  # usable single digits 1..base-1
        if count <= capacity // 2:
            step = max(capacity // (count + 1), 1)
            return [((i + 1) * step,) for i in range(count)]
        # Fixed width k with an even numeric spacing of step >= 2, so
        # the trailing-zero adjustment below can never collide.
        width = 1
        space = self.base
        while space - 2 < 2 * (count + 1):
            width += 1
            space *= self.base
        step = (space - 2) // (count + 1)
        out: list[Component] = []
        for index in range(count):
            value = (index + 1) * step
            digits = []
            for _ in range(width):
                value, digit = divmod(value, self.base)
                digits.append(digit)
            digits.reverse()
            if digits[-1] == 0:
                digits[-1] = 1
            out.append(tuple(digits))
        return out

    # -- label-level operations --------------------------------------------

    def root_label(self) -> NidLabel:
        """The label of the document node."""
        if obs.RECORDING:
            obs.REGISTRY.counter("numbering.labels.allocated").inc()
        return NidLabel(((self.base // 2,),))

    def child_label(self, parent: NidLabel,
                    left: Optional[NidLabel] = None,
                    right: Optional[NidLabel] = None) -> NidLabel:
        """A label for a new child of *parent* between siblings *left*
        and *right* (either may be None for the edges).

        No existing label changes — this is the whole point of the
        scheme (Proposition 1).
        """
        for sibling, side in ((left, "left"), (right, "right")):
            if sibling is not None and not is_parent(parent, sibling):
                raise LabelError(
                    f"{side} sibling {sibling!r} is not a child of "
                    f"{parent!r}")
        low = left.components[-1] if left is not None else None
        high = right.components[-1] if right is not None else None
        component = self.midpoint(low, high)
        if obs.RECORDING:
            obs.REGISTRY.counter("numbering.labels.allocated").inc()
        return NidLabel(parent.components + (component,))

    def child_labels(self, parent: NidLabel, count: int) -> list[NidLabel]:
        """Evenly spaced labels for *count* children (bulk load)."""
        if obs.RECORDING and count > 0:
            obs.REGISTRY.counter("numbering.labels.allocated").inc(count)
        return [NidLabel(parent.components + (component,))
                for component in self.spread(count)]

    def __repr__(self) -> str:
        return f"NumberingScheme(base={self.base})"


def label_length_stats(labels: Iterator[NidLabel]) -> dict[str, float]:
    """Aggregate label sizes: mean/max symbol length (benchmark metric)."""
    lengths = [len(label) for label in labels]
    if not lengths:
        return {"count": 0, "mean": 0.0, "max": 0}
    return {
        "count": len(lengths),
        "mean": sum(lengths) / len(lengths),
        "max": max(lengths),
    }
