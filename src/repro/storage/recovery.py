"""Atomic checkpoints and crash recovery for the storage engine.

The recovery contract (the Sedna pairing of the §9 layout with
logging):

* :func:`checkpoint` writes the binary image *atomically* — temp file
  in the same directory, flush + fsync, then ``os.replace`` — so a
  crash at any point leaves either the old image or the new one,
  never a torn hybrid.  The image records the WAL horizon (the last
  LSN it covers) and the log is reset past it afterwards; a crash in
  between is harmless because replay skips records at or below the
  horizon.
* :func:`recover` loads the last checkpoint image, scans the WAL up
  to the first torn or corrupt record, discards every record of a
  transaction without a COMMIT, and replays the committed suffix in
  LSN order.  Replay re-derives each numbering label and asserts it
  equals the logged one — labels survive recovery without relabeling
  (Proposition 1 extended across the crash), which the result exposes
  as ``relabels == 0``.
* After replay the §9 invariants are re-checked (block chains, label
  ordering, parent pointers); with a schema, §6.2 conformance is
  verified through the typed :class:`StorageNodeStore`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.errors import CorruptionError, StorageError, UpdateError
from repro.storage.backends.base import (
    StorageBackend,
    schema_fingerprint,
    snapshot_version,
)
from repro.storage.backends.file import FileBackend
from repro.storage.engine import StorageEngine
from repro.storage.labels import equal
from repro.storage.persist import load_engine
from repro.storage.wal import (
    COMMIT,
    CREATE_INDEX,
    DDL_KINDS,
    DELETE,
    INSERT_ELEMENT,
    INSERT_TEXT,
    LOAD,
    OP_KINDS,
    SET_ATTRIBUTE,
    WalRecord,
    WriteAheadLog,
    read_wal,
    read_wal_store,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.schema.ast import DocumentSchema


class RecoveryError(StorageError):
    """Recovery could not reconstruct a consistent engine."""


@dataclass
class RecoveryResult:
    """What :func:`recover` reconstructed and what it threw away."""

    engine: StorageEngine
    image_path: str
    wal_path: Optional[str]
    checkpoint_lsn: int
    replayed: int = 0
    skipped: int = 0       # records at or below the checkpoint horizon
    discarded: int = 0     # records of transactions without a COMMIT
    torn_bytes: int = 0
    committed_txns: list[int] = field(default_factory=list)
    discarded_txns: list[int] = field(default_factory=list)
    relabels: int = 0      # asserted 0: Proposition 1 across the crash
    conformance_violations: int = 0
    index_definitions: int = 0  # live index declarations after replay
    indexes_verified: int = 0   # indexes bisimulation-checked vs rebuild
    backend: str = "file"       # which StorageBackend held the state
    snapshot_version: Optional[str] = None  # version id of the image

    def as_dict(self) -> dict:
        return {
            "image": self.image_path,
            "wal": self.wal_path,
            "backend": self.backend,
            "snapshot_version": self.snapshot_version,
            "checkpoint_lsn": self.checkpoint_lsn,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "discarded": self.discarded,
            "torn_bytes": self.torn_bytes,
            "committed_txns": self.committed_txns,
            "discarded_txns": self.discarded_txns,
            "relabels": self.relabels,
            "nodes": self.engine.node_count(),
            "blocks": self.engine.block_count(),
            "index_definitions": self.index_definitions,
            "indexes_verified": self.indexes_verified,
        }


# ----------------------------------------------------------------------
# Checkpoint.


def checkpoint(engine: StorageEngine,
               target: str | os.PathLike | StorageBackend,
               wal: Optional[WriteAheadLog] = None) -> int:
    """Atomically persist *engine*; returns the LSN horizon the
    snapshot covers (0 without a log).

    *target* is an image path (wrapped in a
    :class:`~repro.storage.backends.file.FileBackend`, the historical
    call shape) or any :class:`StorageBackend`.  Either way the
    checkpoint records a fingerprinted snapshot version and resets the
    log past the horizon.
    """
    backend = target if isinstance(target, StorageBackend) \
        else FileBackend(target)
    return backend.checkpoint(engine, wal=wal).lsn


def bulk_load(engine: StorageEngine, document,
              image_path: str | os.PathLike | StorageBackend,
              wal: WriteAheadLog,
              preserve_whitespace: bool = False) -> dict:
    """Load *document* into an empty engine with per-op logging off.

    ``load_document`` builds the §9 block lists directly, so the load
    itself costs no WAL traffic.  Durability comes from one logical
    marker — BEGIN / LOAD(node count) / COMMIT — followed immediately
    by a :func:`checkpoint`, which places the marker at or below the
    new horizon.  A committed LOAD found *past* the horizon at
    recovery is unrecoverable by construction (its nodes have no
    per-op records) and :func:`recover` refuses it, so the crash
    window between COMMIT and checkpoint behaves like a crash before
    the load started: the operator re-runs the load.

    Declared secondary indexes are populated once, after the load, in
    a single build pass per index instead of per-node maintenance.
    Returns a stats dict (node count, txn id, horizon, WAL records).
    """
    if engine.document is not None:
        raise StorageError("bulk_load requires an empty engine")
    was_active = engine.indexes.active
    engine.indexes.active = False  # defer maintenance to one rebuild
    try:
        engine.load_document(document,
                             preserve_whitespace=preserve_whitespace)
    finally:
        engine.indexes.active = was_active
    manager = engine.txn_manager
    txn_id = manager.claim_txn_id() if manager is not None else 1
    count = engine.node_count()
    wal.append_begin(txn_id)
    wal.append_load(txn_id, count)
    wal.append_commit(txn_id)
    horizon = checkpoint(engine, image_path, wal=wal)
    engine.indexes.rebuild_all()
    if obs.RECORDING:
        obs.REGISTRY.counter("recovery.bulk_loads").inc()
        obs.REGISTRY.counter("recovery.bulk_load.nodes").inc(count)
    return {"nodes": count, "txn": txn_id, "checkpoint_lsn": horizon,
            "wal_records": 3}


# ----------------------------------------------------------------------
# Recovery.


def recover(target: str | os.PathLike | StorageBackend,
            wal_path: Optional[str | os.PathLike] = None,
            schema: "Optional[DocumentSchema]" = None,
            strict: bool = False) -> RecoveryResult:
    """Reconstruct an engine from a checkpoint snapshot + WAL.

    *target* is an image path plus optional *wal_path* (the historical
    call shape) or any :class:`StorageBackend`, whose own WAL medium
    is scanned (*wal_path* must then be None).

    With *schema*, §6.2 conformance of the recovered document is
    verified through the typed storage NodeStore and violations raise
    :class:`RecoveryError`.  *strict* additionally asserts global
    document-order monotonicity of every numbering label.
    """
    if obs.ENABLED:
        with obs.TRACER.span("recovery.recover"):
            return _recover(target, wal_path, schema, strict)
    return _recover(target, wal_path, schema, strict)


def _open_target(target, wal_path):
    """Load the engine and scan the WAL from either call shape."""
    if isinstance(target, StorageBackend):
        if wal_path is not None:
            raise RecoveryError(
                "pass either a backend or an explicit wal_path, "
                "not both")
        try:
            engine = target.load_engine()
        except CorruptionError:
            raise  # damaged state keeps its located error
        except StorageError as error:
            raise RecoveryError(str(error)) from error
        store = target.wal_store()
        scan = read_wal_store(store) if store is not None else None
        return (engine, target.describe(),
                store.describe() if store is not None else None,
                scan, target.name)
    path = Path(target)
    if not path.exists():
        raise RecoveryError(f"no checkpoint image at {path}")
    engine = load_engine(path.read_bytes())
    scan = read_wal(wal_path) if wal_path is not None else None
    return (engine, str(path),
            str(wal_path) if wal_path is not None else None,
            scan, "file")


def _recover(target, wal_path, schema, strict) -> RecoveryResult:
    recover_started = time.perf_counter_ns() if obs.RECORDING else 0
    engine, image_desc, wal_desc, scan, backend_name = \
        _open_target(target, wal_path)
    if obs.RECORDING:
        # Materialize the Proposition 1 counters at zero: recovery
        # must never relabel, and the explicit 0 is the claim.
        obs.REGISTRY.counter("numbering.relabels.sedna")
        obs.REGISTRY.counter("storage.relabels")
    result = RecoveryResult(
        engine=engine, image_path=image_desc, wal_path=wal_desc,
        checkpoint_lsn=engine.checkpoint_lsn, backend=backend_name,
        # The version of the image this recovery started from —
        # computed before replay, which may change the schema shape.
        snapshot_version=snapshot_version(engine.checkpoint_lsn,
                                          schema_fingerprint(engine)))

    if scan is not None:
        result.torn_bytes = scan.torn_bytes
        committed = scan.committed_txns()
        seen_committed: list[int] = []
        seen_discarded: list[int] = []
        index = {d.nid.symbols(): d
                 for d in engine.iter_document_order()}
        for record in scan.records:
            if record.kind == COMMIT and record.txn in committed:
                if record.txn not in seen_committed:
                    seen_committed.append(record.txn)
            if record.kind in DDL_KINDS:
                if record.lsn <= engine.checkpoint_lsn:
                    result.skipped += 1
                    continue
                if record.txn not in committed:
                    result.discarded += 1
                    if record.txn not in seen_discarded:
                        seen_discarded.append(record.txn)
                    continue
                _apply_ddl(engine, record)
                result.replayed += 1
                continue
            if record.kind == LOAD:
                if record.lsn <= engine.checkpoint_lsn:
                    # The bulk-load protocol checkpoints right after
                    # the marker, so this is the normal case.
                    result.skipped += 1
                elif record.txn in committed:
                    raise RecoveryError(
                        f"WAL record {record.lsn}: a committed bulk "
                        f"LOAD of {record.node_count} nodes was never "
                        "checkpointed — its nodes have no per-op "
                        "records and cannot be replayed; re-run the "
                        "load")
                else:
                    result.discarded += 1
                    if record.txn not in seen_discarded:
                        seen_discarded.append(record.txn)
                continue
            if record.kind not in OP_KINDS:
                continue
            if record.lsn <= engine.checkpoint_lsn:
                result.skipped += 1
                continue
            if record.txn not in committed:
                result.discarded += 1
                if record.txn not in seen_discarded:
                    seen_discarded.append(record.txn)
                continue
            _apply(engine, index, record)
            result.replayed += 1
        result.committed_txns = seen_committed
        result.discarded_txns = seen_discarded

    result.relabels = engine.relabel_count
    if result.relabels:  # pragma: no cover - Proposition 1 holds
        raise RecoveryError(
            f"recovery relabeled {result.relabels} nodes")
    try:
        engine.check_invariants()
    except StorageError as error:
        raise RecoveryError(f"recovered engine is corrupt: {error}") \
            from error
    result.index_definitions = len(engine.indexes)
    if engine.indexes.active:
        # Reconciliation: the indexes carried through image load +
        # incremental replay maintenance must bisimulate a rebuild
        # from the recovered block lists.
        try:
            result.indexes_verified = \
                engine.indexes.verify_consistency()
        except StorageError as error:
            raise RecoveryError(
                f"recovered index state is inconsistent: {error}") \
                from error
    if strict:
        _verify_label_order(engine)
        # Replay maintained the statistics through the same mutation
        # hooks as live traffic; in strict mode the digest must match
        # a from-scratch recount of the recovered block lists.
        try:
            engine.stats.verify_consistency(engine)
        except StorageError as error:
            raise RecoveryError(
                f"recovered statistics are inconsistent: {error}") \
                from error
    if schema is not None:
        result.conformance_violations = _verify_conformance(engine,
                                                            schema)
    if obs.RECORDING:
        obs.REGISTRY.counter("recovery.replayed").inc(result.replayed)
        obs.REGISTRY.counter("recovery.discarded").inc(result.discarded)
        if result.torn_bytes:
            obs.REGISTRY.counter("recovery.torn_tails").inc()
        obs.REGISTRY.histogram("recovery.replay.ns").observe(
            time.perf_counter_ns() - recover_started)
    return result


def _apply(engine: StorageEngine, index: dict, record: WalRecord) -> None:
    """Redo one committed logical record.

    The engine re-derives the numbering label from the same state the
    original mutation saw; a mismatch with the logged label would mean
    replay relabeled — a Proposition 1 violation — and raises.
    """
    if record.kind in (INSERT_ELEMENT, INSERT_TEXT):
        parent = index.get(record.parent_nid.symbols())
        if parent is None:
            raise RecoveryError(
                f"WAL record {record.lsn}: parent {record.parent_nid!r} "
                "not present at replay")
        if record.kind == INSERT_ELEMENT:
            descriptor = engine.insert_child(parent, record.index,
                                             name=record.name)
        else:
            descriptor = engine.insert_child(parent, record.index,
                                             text=record.text)
        if not equal(descriptor.nid, record.nid):
            raise RecoveryError(
                f"WAL record {record.lsn}: replay produced label "
                f"{descriptor.nid!r}, log says {record.nid!r}")
        index[descriptor.nid.symbols()] = descriptor
    elif record.kind == SET_ATTRIBUTE:
        parent = index.get(record.parent_nid.symbols())
        if parent is None:
            raise RecoveryError(
                f"WAL record {record.lsn}: parent {record.parent_nid!r} "
                "not present at replay")
        descriptor = engine.set_attribute(parent, record.name,
                                          record.text or "",
                                          replace=record.replace)
        if not equal(descriptor.nid, record.nid):
            raise RecoveryError(
                f"WAL record {record.lsn}: attribute label diverged")
        index[descriptor.nid.symbols()] = descriptor
    elif record.kind == DELETE:
        descriptor = index.get(record.nid.symbols())
        if descriptor is None:
            raise RecoveryError(
                f"WAL record {record.lsn}: delete target "
                f"{record.nid!r} not present at replay")
        doomed = [d.nid.symbols()
                  for d in engine.iter_document_order(descriptor)]
        engine.delete_subtree(descriptor)
        for symbols in doomed:
            index.pop(symbols, None)


def _apply_ddl(engine: StorageEngine, record: WalRecord) -> None:
    """Redo one committed index DDL record.

    The recovered engine has no transaction manager attached, so the
    re-execution installs or drops the index without re-logging; the
    contents are rebuilt from the replayed block lists.
    """
    try:
        if record.kind == CREATE_INDEX:
            engine.create_index(record.index_path or "",
                                record.index_kind or "value",
                                value_type=record.value_type or "string")
        else:
            engine.drop_index(record.index_path or "",
                              record.index_kind or "value")
    except UpdateError as error:
        raise RecoveryError(
            f"WAL record {record.lsn}: index DDL replay failed: "
            f"{error}") from error


def _verify_label_order(engine: StorageEngine) -> None:
    """Strict mode: every label strictly grows along document order."""
    from repro.storage.labels import before
    previous = None
    for descriptor in engine.iter_document_order():
        if previous is not None and not before(previous.nid,
                                               descriptor.nid):
            raise RecoveryError(
                f"document order broken between {previous!r} and "
                f"{descriptor!r}")
        previous = descriptor


def _verify_conformance(engine: StorageEngine,
                        schema: "DocumentSchema") -> int:
    """§6.2 conformance of the recovered document (typed store)."""
    # Imported lazily: the algebra layer sits above storage.
    from repro.algebra import ConformanceChecker
    from repro.storage.store import StorageNodeStore
    store = StorageNodeStore.typed(engine, schema)
    violations = ConformanceChecker(schema).check_store(store)
    if violations:
        raise RecoveryError(
            f"recovered document violates {len(violations)} §6.2 "
            f"requirement(s): {violations[0]}")
    return 0
