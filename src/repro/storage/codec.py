"""Shared binary codec of the persistence layer.

One statement of the little-endian fixed-width field conventions used
by every durable artifact in this package: the checkpoint image
(:mod:`repro.storage.persist`), the write-ahead log
(:mod:`repro.storage.wal`) and the per-block payloads of the pluggable
backends (:mod:`repro.storage.backends`).  The pieces:

* :class:`Writer` — field writer that maintains a running CRC32 of
  everything written (the image trailer signs it);
* :class:`Reader` — bounds-checked field reader whose errors are
  :class:`~repro.errors.CorruptionError` carrying a backend label and
  a backend-specific location ("byte 123" for a file image, "block
  row 7 byte 9" for a SQLite payload), never a raw ``struct.error``;
* u32-length + CRC32 record framing (:func:`encode_frame` /
  :func:`iter_frames`) — the WAL's torn-tail detection, shared by
  every WAL store;
* numbering-label packing (:func:`pack_nid` / ``Reader.nid``) — the
  digit-exact wire form of :class:`~repro.storage.labels.NidLabel`.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Callable, Iterator, Optional

from repro.errors import CorruptionError
from repro.storage.labels import NidLabel


class Writer:
    """Field writer that maintains the running CRC32 of its output."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self.crc = 0

    def raw(self, data: bytes) -> None:
        self._stream.write(data)
        self.crc = zlib.crc32(data, self.crc)

    def u8(self, value: int) -> None:
        self.raw(struct.pack("<B", value))

    def u16(self, value: int) -> None:
        self.raw(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        self.raw(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        self.raw(struct.pack("<Q", value))

    def text(self, value: str) -> None:
        data = value.encode("utf-8")
        self.u32(len(data))
        self.raw(data)

    def nid(self, nid: NidLabel) -> None:
        """Digit-exact numbering label: component count, then per
        component its length and digits, all u16."""
        components = nid.components
        self.u16(len(components))
        for component in components:
            self.u16(len(component))
            for digit in component:
                self.u16(digit)

    def trailer(self) -> None:
        """The CRC32 of everything written so far (not self-included)."""
        self._stream.write(struct.pack("<I", self.crc))


class Reader:
    """Bounds-checked field reader with backend-labeled errors.

    *backend* names where the bytes came from ("file", "sqlite",
    "memory"); *place* renders a byte position into that backend's
    location vocabulary (default: ``byte {pos}``).  Both ride on the
    :class:`CorruptionError` any damage raises, so ``--json`` error
    objects stay meaningful whatever medium held the bytes.
    """

    def __init__(self, data: bytes, backend: str = "file",
                 place: Optional[Callable[[int], str]] = None,
                 what: str = "storage image") -> None:
        self._data = data
        self._pos = 0
        self.backend = backend
        self.what = what
        self._place = place or (lambda pos: f"byte {pos}")

    @property
    def pos(self) -> int:
        return self._pos

    def location(self, pos: Optional[int] = None) -> str:
        return self._place(self._pos if pos is None else pos)

    def corrupt(self, message: str,
                pos: Optional[int] = None) -> CorruptionError:
        """Build a located corruption error (caller raises it)."""
        return CorruptionError(message, backend=self.backend,
                               location=self.location(pos))

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise self.corrupt(
                f"truncated {self.what} at {self.location()} "
                f"(wanted {count} more byte(s), "
                f"{len(self._data) - self._pos} left)")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def text(self) -> str:
        start = self._pos
        raw = self._take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise self.corrupt(
                f"corrupt text in {self.what} at {self.location(start)}: "
                f"{error}", pos=start) from error

    def nid(self) -> NidLabel:
        count = self.u16()
        components = []
        for _ in range(count):
            length = self.u16()
            components.append(tuple(self.u16() for _ in range(length)))
        return NidLabel(tuple(components))

    def at_end(self) -> bool:
        return self._pos == len(self._data)


# ----------------------------------------------------------------------
# Record framing: u32 payload length + u32 CRC32(payload) + payload.
# The write-ahead log's torn-tail rule lives here: a frame whose header
# is incomplete, whose payload is short, or whose CRC32 does not match
# is torn, and everything from its first byte on is garbage.

FRAME_HEADER_LEN = 8


def encode_frame(payload: bytes) -> bytes:
    """One framed record ready to append."""
    return struct.pack("<II", len(payload), zlib.crc32(payload)) + payload


def iter_frames(data: bytes, start: int = 0
                ) -> Iterator[tuple[bytes, int]]:
    """Yield ``(payload, end_offset)`` for every intact frame.

    Stops silently at the first torn or corrupt frame — the caller
    compares the last ``end_offset`` against ``len(data)`` to size the
    torn tail.
    """
    pos = start
    while pos < len(data):
        if pos + FRAME_HEADER_LEN > len(data):
            return  # torn frame header
        length, crc = struct.unpack_from("<II", data, pos)
        end = pos + FRAME_HEADER_LEN + length
        if end > len(data):
            return  # torn payload
        payload = data[pos + FRAME_HEADER_LEN:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt payload: treat as torn tail
        yield payload, end
        pos = end


def pack_nid(out: bytearray, nid: NidLabel) -> None:
    """Append the wire form of *nid* to *out* (see ``Writer.nid``)."""
    out += struct.pack("<H", len(nid.components))
    for component in nid.components:
        out += struct.pack("<H", len(component))
        for digit in component:
            out += struct.pack("<H", digit)


def pack_text(out: bytearray, value: str) -> None:
    """Append a u32-length-prefixed UTF-8 string to *out*."""
    data = value.encode("utf-8")
    out += struct.pack("<I", len(data))
    out += data
