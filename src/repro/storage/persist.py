"""Binary persistence of the storage engine.

Sedna is a disk-based system; this module gives the simulated engine
the corresponding capability: :func:`dump_engine` serializes the whole
Section 9 state — descriptive schema, numbering labels, descriptors,
and the block assignment with its in-block order chains — into a
compact binary image, and :func:`load_engine` reconstructs an
equivalent engine from it.  Labels are stored digit-exactly, so
document order, ancestry and future gap insertions behave identically
after a round trip.

Format (little-endian, fixed-width), version 4::

* header: magic ``SEDNAPY4``, base (u16), block capacity (u16),
  checkpoint LSN (u64) — the WAL horizon this image covers;
* index definitions: count (u32), then per declared secondary index
  its path, kind and value type (length-prefixed UTF-8).  Only the
  *definitions* persist — index contents are derived state, rebuilt
  from the block lists on load;
* schema nodes in pre-order: parent index (u32), type tag (u8),
  name URI and local (length-prefixed UTF-8, only for named kinds);
* descriptors in document order: schema node index (u32), the nid as
  component-count / digits-per-component (u16s), parent and sibling
  ids (u32, ``0xFFFFFFFF`` = none), optional text value;
* per schema node: its blocks as lists of descriptor ids in in-block
  chain (document) order;
* statistics digest: the canonical JSON of
  :meth:`~repro.obs.statistics.StatisticsCollector.export`
  (length-prefixed UTF-8) — per-schema-node descriptor counts, byte
  sizing and value ranges.  Loads always *recount* from the decoded
  block lists (decoding bypasses the mutation hooks); the persisted
  digest is a corruption check against that recount;
* trailer: CRC32 (u32) of every preceding byte, header included.

Version 3 images (magic ``SEDNAPY3``: no statistics digest), version 2
images (magic ``SEDNAPY2``: additionally no index-definition section)
and version 1 images (magic ``SEDNAPY1``: additionally no LSN and no
trailer) still load; each v1 load bumps the ``persist.legacy_images``
warning counter.
Any truncated or garbled input surfaces as :class:`StorageError` with
the byte offset of the damage — never a raw ``struct.error``.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO

from repro import obs
from repro.errors import CorruptionError, StorageError
from repro.obs.statistics import StatisticsCollector
from repro.xmlio.qname import QName
from repro.storage.blocks import Block
from repro.storage.codec import Reader, Writer
from repro.storage.descriptor import NodeDescriptor
from repro.storage.dschema import SchemaNode
from repro.storage.engine import StorageEngine
from repro.storage.indexes import KINDS, IndexDefinition
from repro.storage.labels import NidLabel

_MAGIC_V1 = b"SEDNAPY1"
_MAGIC_V2 = b"SEDNAPY2"
_MAGIC_V3 = b"SEDNAPY3"
_MAGIC_V4 = b"SEDNAPY4"
_NONE = 0xFFFFFFFF

_TYPE_TAGS = {"document": 0, "element": 1, "attribute": 2, "text": 3}
_TAG_TYPES = {tag: name for name, tag in _TYPE_TAGS.items()}


def dump_engine(engine: StorageEngine, stream: BinaryIO,
                checkpoint_lsn: int = 0) -> None:
    """Serialize *engine* into *stream* (version 4 image).

    *checkpoint_lsn* is the WAL horizon the image covers — recovery
    replays only log records strictly beyond it.
    """
    if engine.document is None:
        raise StorageError("cannot dump an empty engine")
    writer = Writer(stream)
    writer.raw(_MAGIC_V4)
    writer.u16(engine.numbering.base)
    writer.u16(engine.block_capacity)
    writer.u64(checkpoint_lsn)

    definitions = engine.indexes.definitions()
    writer.u32(len(definitions))
    for definition in definitions:
        writer.text(definition.path)
        writer.text(definition.kind)
        writer.text(definition.value_type)

    schema_nodes = list(engine.schema.iter_nodes())
    schema_index = {id(node): i for i, node in enumerate(schema_nodes)}
    writer.u32(len(schema_nodes))
    for node in schema_nodes:
        writer.u32(schema_index[id(node.parent)]
                   if node.parent is not None else _NONE)
        writer.u8(_TYPE_TAGS[node.node_type])
        if node.name is not None:
            writer.text(node.name.uri)
            writer.text(node.name.local)

    descriptors = list(engine.iter_document_order())
    descriptor_index = {id(d): i for i, d in enumerate(descriptors)}
    writer.u32(len(descriptors))
    for descriptor in descriptors:
        writer.u32(schema_index[id(descriptor.schema_node)])
        writer.nid(descriptor.nid)
        for link in (descriptor.parent, descriptor.left_sibling,
                     descriptor.right_sibling):
            writer.u32(descriptor_index[id(link)]
                       if link is not None else _NONE)
        if descriptor.value is not None:
            writer.u8(1)
            writer.text(descriptor.value)
        else:
            writer.u8(0)

    for node in schema_nodes:
        blocks = list(node.blocks())
        writer.u32(len(blocks))
        for block in blocks:
            ordered = list(block.iter_in_order())
            writer.u32(len(ordered))
            for descriptor in ordered:
                writer.u32(descriptor_index[id(descriptor)])

    writer.text(json.dumps(engine.stats.export(),
                           separators=(",", ":"), sort_keys=True))
    writer.trailer()


def dumps_engine(engine: StorageEngine, checkpoint_lsn: int = 0) -> bytes:
    """Serialize *engine* to a bytes image."""
    import io
    buffer = io.BytesIO()
    dump_engine(engine, buffer, checkpoint_lsn=checkpoint_lsn)
    return buffer.getvalue()


def load_engine(data: bytes, backend: str = "file",
                place=None) -> StorageEngine:
    """Reconstruct an engine from a binary image (either version).

    *backend* and *place* label corruption errors with the medium the
    bytes came from (see :class:`repro.storage.codec.Reader`).
    """
    magic_len = len(_MAGIC_V4)
    if len(data) < magic_len:
        raise CorruptionError(
            "not a storage image (shorter than the magic)",
            backend=backend, location="byte 0")
    magic = data[:magic_len]
    if magic in (_MAGIC_V2, _MAGIC_V3, _MAGIC_V4):
        if len(data) < magic_len + 4:
            raise CorruptionError(
                "truncated storage image (no room for the CRC trailer)",
                backend=backend, location="trailer")
        (expected,) = struct.unpack("<I", data[-4:])
        actual = zlib.crc32(data[:-4])
        if actual != expected:
            raise CorruptionError(
                f"storage image CRC mismatch: trailer says "
                f"{expected:#010x}, content hashes to {actual:#010x} "
                "(torn or corrupted image)",
                backend=backend, location="trailer")
        body = data[:-4]
        version = {_MAGIC_V4: 4, _MAGIC_V3: 3, _MAGIC_V2: 2}[magic]
    elif magic == _MAGIC_V1:
        body = data
        version = 1
        if obs.RECORDING:
            # The warning counter for pre-trailer images: they load,
            # but without whole-image corruption detection.
            obs.REGISTRY.counter("persist.legacy_images").inc()
    else:
        raise CorruptionError("not a storage image (bad magic)",
                              backend=backend, location="byte 0")

    reader = Reader(body, backend=backend, place=place)
    reader._take(magic_len)
    try:
        return _parse_image(reader, version)
    except StorageError:
        raise
    except (struct.error, UnicodeDecodeError, IndexError,
            OverflowError, MemoryError) as error:
        raise reader.corrupt(
            f"corrupt storage image at {reader.location()}: "
            f"{error}") from error


def _parse_image(reader: Reader, version: int) -> StorageEngine:
    base = reader.u16()
    capacity = reader.u16()
    checkpoint_lsn = 0 if version == 1 else reader.u64()
    engine = StorageEngine(base=base, block_capacity=capacity)
    engine.checkpoint_lsn = checkpoint_lsn

    definitions: list[IndexDefinition] = []
    if version >= 3:
        definition_count = reader.u32()
        for _ in range(definition_count):
            definition = IndexDefinition(reader.text(), reader.text(),
                                         reader.text())
            if definition.kind not in KINDS:
                raise StorageError(
                    f"unknown index kind {definition.kind!r} in "
                    "storage image")
            definitions.append(definition)

    schema_count = reader.u32()
    schema_nodes: list[SchemaNode] = []
    for index in range(schema_count):
        parent_index = reader.u32()
        node_type = _TAG_TYPES.get(reader.u8())
        if node_type is None:
            raise reader.corrupt(
                f"unknown schema node type tag at {reader.location()}")
        if node_type in ("element", "attribute"):
            uri = reader.text()
            local = reader.text()
            name: QName | None = QName(uri, local)
        else:
            name = None
        if parent_index == _NONE:
            if index != 0 or node_type != "document":
                raise StorageError("malformed schema tree")
            schema_nodes.append(engine.schema.root)
            continue
        if parent_index >= len(schema_nodes):
            raise reader.corrupt(
                f"schema parent index {parent_index} out of range "
                f"at {reader.location()}")
        parent = schema_nodes[parent_index]
        child = engine.schema.get_or_add_child(parent, name, node_type)
        schema_nodes.append(child)

    descriptor_count = reader.u32()
    descriptors: list[NodeDescriptor] = []
    links: list[tuple[int, int, int]] = []
    for _ in range(descriptor_count):
        schema_ref = reader.u32()
        if schema_ref >= len(schema_nodes):
            raise reader.corrupt(
                f"descriptor schema index {schema_ref} out of range "
                f"at {reader.location()}")
        schema_node = schema_nodes[schema_ref]
        nid = reader.nid()
        parent_id = reader.u32()
        left_id = reader.u32()
        right_id = reader.u32()
        value = reader.text() if reader.u8() else None
        descriptor = NodeDescriptor(schema_node, nid, value=value)
        descriptors.append(descriptor)
        links.append((parent_id, left_id, right_id))

    for descriptor, (parent_id, left_id, right_id) in zip(descriptors,
                                                          links):
        for link_id in (parent_id, left_id, right_id):
            if link_id != _NONE and link_id >= len(descriptors):
                raise StorageError(
                    f"descriptor link {link_id} out of range")
        if parent_id != _NONE:
            descriptor.parent = descriptors[parent_id]
        if left_id != _NONE:
            descriptor.left_sibling = descriptors[left_id]
        if right_id != _NONE:
            descriptor.right_sibling = descriptors[right_id]

    for schema_node in schema_nodes:
        block_count = reader.u32()
        previous: Block | None = None
        for _b in range(block_count):
            block = Block(schema_node, capacity)
            if previous is None:
                schema_node.first_block = block
            else:
                previous.next_block = block
                block.prev_block = previous
            schema_node.last_block = block
            previous = block
            member_count = reader.u32()
            last: NodeDescriptor | None = None
            for _m in range(member_count):
                member_id = reader.u32()
                if member_id >= len(descriptors):
                    raise reader.corrupt(
                        f"block member {member_id} out of range "
                        f"at {reader.location()}")
                descriptor = descriptors[member_id]
                block.insert_after(descriptor, last)
                last = descriptor
                schema_node.descriptor_count += 1

    stats_digest = reader.text() if version >= 4 else None

    if not reader.at_end():
        raise reader.corrupt(
            f"trailing bytes in storage image after {reader.location()}")

    # Rebuild the first-child-by-schema pointers from the links.
    for descriptor in descriptors:
        parent = descriptor.parent
        if parent is None:
            continue
        index = parent.schema_node.child_index(descriptor.schema_node)
        current = parent.children_by_schema.get(index)
        if current is None or descriptor.nid.symbols() < \
                current.nid.symbols():
            parent.children_by_schema[index] = descriptor

    if not descriptors or descriptors[0].node_type != "document":
        raise StorageError("image holds no document node")
    engine.document = descriptors[0]
    engine.check_invariants()

    # Image decoding bypassed the mutation hooks, so the statistics
    # are rebuilt from the decoded block lists; a digest persisted by
    # v4+ images must agree with the recount (corruption check).
    engine.stats = StatisticsCollector.recount(engine)
    if stats_digest is not None and \
            json.loads(stats_digest) != engine.stats.export():
        raise reader.corrupt(
            "persisted statistics digest does not match the image's "
            "stored data")

    # Re-install the declared indexes last: their contents are derived
    # state, rebuilt here by one block-list scan per index.
    for definition in definitions:
        engine.indexes.install(definition)
    return engine
