"""Binary persistence of the storage engine.

Sedna is a disk-based system; this module gives the simulated engine
the corresponding capability: :func:`dump_engine` serializes the whole
Section 9 state — descriptive schema, numbering labels, descriptors,
and the block assignment with its in-block order chains — into a
compact binary image, and :func:`load_engine` reconstructs an
equivalent engine from it.  Labels are stored digit-exactly, so
document order, ancestry and future gap insertions behave identically
after a round trip.

Format (little-endian, fixed-width):

* header: magic ``SEDNAPY1``, base (u16), block capacity (u16);
* schema nodes in pre-order: parent index (u32), type tag (u8),
  name URI and local (length-prefixed UTF-8, only for named kinds);
* descriptors in document order: schema node index (u32), the nid as
  component-count / digits-per-component (u16s), parent and sibling
  ids (u32, ``0xFFFFFFFF`` = none), optional text value;
* per schema node: its blocks as lists of descriptor ids in in-block
  chain (document) order.
"""

from __future__ import annotations

import struct
from typing import BinaryIO

from repro.errors import StorageError
from repro.xmlio.qname import QName
from repro.storage.blocks import Block
from repro.storage.descriptor import NodeDescriptor
from repro.storage.dschema import SchemaNode
from repro.storage.engine import StorageEngine
from repro.storage.labels import NidLabel

_MAGIC = b"SEDNAPY1"
_NONE = 0xFFFFFFFF

_TYPE_TAGS = {"document": 0, "element": 1, "attribute": 2, "text": 3}
_TAG_TYPES = {tag: name for name, tag in _TYPE_TAGS.items()}


class _Writer:
    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream

    def u8(self, value: int) -> None:
        self._stream.write(struct.pack("<B", value))

    def u16(self, value: int) -> None:
        self._stream.write(struct.pack("<H", value))

    def u32(self, value: int) -> None:
        self._stream.write(struct.pack("<I", value))

    def text(self, value: str) -> None:
        data = value.encode("utf-8")
        self.u32(len(data))
        self._stream.write(data)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise StorageError("truncated storage image")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def text(self) -> str:
        return self._take(self.u32()).decode("utf-8")

    def at_end(self) -> bool:
        return self._pos == len(self._data)


def dump_engine(engine: StorageEngine, stream: BinaryIO) -> None:
    """Serialize *engine* into *stream*."""
    if engine.document is None:
        raise StorageError("cannot dump an empty engine")
    writer = _Writer(stream)
    stream.write(_MAGIC)
    writer.u16(engine.numbering.base)
    writer.u16(engine.block_capacity)

    schema_nodes = list(engine.schema.iter_nodes())
    schema_index = {id(node): i for i, node in enumerate(schema_nodes)}
    writer.u32(len(schema_nodes))
    for node in schema_nodes:
        writer.u32(schema_index[id(node.parent)]
                   if node.parent is not None else _NONE)
        writer.u8(_TYPE_TAGS[node.node_type])
        if node.name is not None:
            writer.text(node.name.uri)
            writer.text(node.name.local)

    descriptors = list(engine.iter_document_order())
    descriptor_index = {id(d): i for i, d in enumerate(descriptors)}
    writer.u32(len(descriptors))
    for descriptor in descriptors:
        writer.u32(schema_index[id(descriptor.schema_node)])
        components = descriptor.nid.components
        writer.u16(len(components))
        for component in components:
            writer.u16(len(component))
            for digit in component:
                writer.u16(digit)
        for link in (descriptor.parent, descriptor.left_sibling,
                     descriptor.right_sibling):
            writer.u32(descriptor_index[id(link)]
                       if link is not None else _NONE)
        if descriptor.value is not None:
            writer.u8(1)
            writer.text(descriptor.value)
        else:
            writer.u8(0)

    for node in schema_nodes:
        blocks = list(node.blocks())
        writer.u32(len(blocks))
        for block in blocks:
            ordered = list(block.iter_in_order())
            writer.u32(len(ordered))
            for descriptor in ordered:
                writer.u32(descriptor_index[id(descriptor)])


def dumps_engine(engine: StorageEngine) -> bytes:
    """Serialize *engine* to a bytes image."""
    import io
    buffer = io.BytesIO()
    dump_engine(engine, buffer)
    return buffer.getvalue()


def load_engine(data: bytes) -> StorageEngine:
    """Reconstruct an engine from a binary image."""
    reader = _Reader(data)
    if reader._take(len(_MAGIC)) != _MAGIC:
        raise StorageError("not a storage image (bad magic)")
    base = reader.u16()
    capacity = reader.u16()
    engine = StorageEngine(base=base, block_capacity=capacity)

    schema_count = reader.u32()
    schema_nodes: list[SchemaNode] = []
    for index in range(schema_count):
        parent_index = reader.u32()
        node_type = _TAG_TYPES.get(reader.u8())
        if node_type is None:
            raise StorageError("unknown schema node type tag")
        if node_type in ("element", "attribute"):
            uri = reader.text()
            local = reader.text()
            name: QName | None = QName(uri, local)
        else:
            name = None
        if parent_index == _NONE:
            if index != 0 or node_type != "document":
                raise StorageError("malformed schema tree")
            schema_nodes.append(engine.schema.root)
            continue
        parent = schema_nodes[parent_index]
        child = engine.schema.get_or_add_child(parent, name, node_type)
        schema_nodes.append(child)

    descriptor_count = reader.u32()
    descriptors: list[NodeDescriptor] = []
    links: list[tuple[int, int, int]] = []
    for _ in range(descriptor_count):
        schema_node = schema_nodes[reader.u32()]
        component_count = reader.u16()
        components = []
        for _c in range(component_count):
            digit_count = reader.u16()
            components.append(tuple(reader.u16()
                                    for _d in range(digit_count)))
        nid = NidLabel(tuple(components))
        parent_id = reader.u32()
        left_id = reader.u32()
        right_id = reader.u32()
        value = reader.text() if reader.u8() else None
        descriptor = NodeDescriptor(schema_node, nid, value=value)
        descriptors.append(descriptor)
        links.append((parent_id, left_id, right_id))

    for descriptor, (parent_id, left_id, right_id) in zip(descriptors,
                                                          links):
        if parent_id != _NONE:
            descriptor.parent = descriptors[parent_id]
        if left_id != _NONE:
            descriptor.left_sibling = descriptors[left_id]
        if right_id != _NONE:
            descriptor.right_sibling = descriptors[right_id]

    for schema_node in schema_nodes:
        block_count = reader.u32()
        previous: Block | None = None
        for _b in range(block_count):
            block = Block(schema_node, capacity)
            if previous is None:
                schema_node.first_block = block
            else:
                previous.next_block = block
                block.prev_block = previous
            schema_node.last_block = block
            previous = block
            member_count = reader.u32()
            last: NodeDescriptor | None = None
            for _m in range(member_count):
                descriptor = descriptors[reader.u32()]
                block.insert_after(descriptor, last)
                last = descriptor
                schema_node.descriptor_count += 1

    if not reader.at_end():
        raise StorageError("trailing bytes in storage image")

    # Rebuild the first-child-by-schema pointers from the links.
    for descriptor in descriptors:
        parent = descriptor.parent
        if parent is None:
            continue
        index = parent.schema_node.child_index(descriptor.schema_node)
        current = parent.children_by_schema.get(index)
        if current is None or descriptor.nid.symbols() < \
                current.nid.symbols():
            parent.children_by_schema[index] = descriptor

    if not descriptors or descriptors[0].node_type != "document":
        raise StorageError("image holds no document node")
    engine.document = descriptors[0]
    engine.check_invariants()
    return engine
