"""Node descriptors — the physical node representation of Example 10.

A descriptor carries exactly the fields of the paper's figure:

* ``parent`` pointer,
* ``left_sibling`` / ``right_sibling`` pointers,
* the ``nid`` numbering label,
* ``next_in_block`` / ``prev_in_block`` *short* (2-byte) pointers that
  reconstruct document order among the unordered descriptors of one
  block,
* for element (and document) nodes, pointers to the *first* child per
  schema child rather than to every child,

plus the text value for the "text-enabled" kinds (text and attribute
nodes), which Sedna stores out of line.  Pointer sizes are modelled
explicitly so the benchmarks can report bytes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.storage.labels import NidLabel

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.blocks import Block
    from repro.storage.dschema import SchemaNode

#: Modelled size of a full node pointer, in bytes.
POINTER_BYTES = 8
#: Modelled size of an in-block short pointer, in bytes (paper: 2).
SHORT_POINTER_BYTES = 2
#: The null slot value of the in-block short pointers.
NO_SLOT = -1


class NodeDescriptor:
    """The physical representation of one node instance."""

    __slots__ = ("schema_node", "nid", "node_type", "parent",
                 "left_sibling", "right_sibling", "next_in_block",
                 "prev_in_block", "children_by_schema", "value", "block",
                 "slot")

    def __init__(self, schema_node: "SchemaNode", nid: NidLabel,
                 value: str | None = None) -> None:
        self.schema_node = schema_node
        self.nid = nid
        # Denormalized from the schema node (which never changes type):
        # node_type is read in every step test of the query layer, so
        # it is a slot, not a property chased through two attributes.
        self.node_type = schema_node.node_type
        self.parent: Optional[NodeDescriptor] = None
        self.left_sibling: Optional[NodeDescriptor] = None
        self.right_sibling: Optional[NodeDescriptor] = None
        # Short pointers: slot numbers within this descriptor's block.
        self.next_in_block: int = NO_SLOT
        self.prev_in_block: int = NO_SLOT
        # First child per schema child index (sparse map).
        self.children_by_schema: dict[int, NodeDescriptor] = {}
        self.value = value
        self.block: "Block | None" = None
        self.slot: int = NO_SLOT

    # -- derived properties ------------------------------------------------

    @property
    def is_text_enabled(self) -> bool:
        """Text and attribute descriptors carry a value."""
        return self.node_type in ("text", "attribute")

    def first_child_for(self, schema_child_index: int
                        ) -> "NodeDescriptor | None":
        """The stored pointer to the first child by schema (§9.2)."""
        return self.children_by_schema.get(schema_child_index)

    def size_bytes(self) -> int:
        """The modelled descriptor size.

        Three full pointers + two short pointers + the nid symbols
        (one byte per symbol) + one full pointer per schema child
        pointer actually stored.
        """
        size = 3 * POINTER_BYTES
        size += 2 * SHORT_POINTER_BYTES
        size += len(self.nid)
        size += POINTER_BYTES * len(self.children_by_schema)
        return size

    def __repr__(self) -> str:
        return (f"NodeDescriptor({self.schema_node.step!r}, "
                f"{self.nid!r})")
