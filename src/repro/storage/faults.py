"""Deterministic fault injection for the durability layer.

The crash model is the standard one for write-ahead logging: a crash
destroys everything in memory and leaves the *files* (checkpoint image
and WAL) exactly as far as they were written.  The harness simulates
the kill in-process: an armed :class:`FaultPlan` makes the named crash
point raise :class:`CrashError`, the test discards the engine object
(that is the "memory dies" part), and recovery must reconstruct a
consistent engine from the files alone.

:class:`CrashError` deliberately does **not** derive from
``ReproError`` — a simulated process death must never be swallowed by
the library's own ``except ReproError`` handlers (or by a rollback
path); it has to unwind like a SIGKILL.

Two injection styles:

* *targeted* — ``FaultPlan().crash_at("wal.append", hit=2)`` kills the
  process model at the second WAL append; the crash-matrix tests walk
  every named point this way;
* *probabilistic* — ``FaultPlan.probabilistic(seed=7, rate=0.05)``
  flips a seeded coin at every point it passes, for randomized
  convergence sweeps.  Same seed, same crashes: fully deterministic.

The instrumented sites call :func:`fire` (crash-before-effect) or, for
torn writes, :func:`wants` followed by a deliberate partial write and
an explicit raise — that is how the tests produce half-written WAL
records and checkpoint images.
"""

from __future__ import annotations

import random
from collections import Counter
from contextlib import contextmanager
from typing import Iterator, Optional

#: Every named crash point threaded through the storage layer.  The
#: crash-matrix test parametrizes over exactly this set, so adding a
#: point here without instrumenting a site fails the suite.
CRASH_POINTS = frozenset({
    "wal.append",         # before a WAL record reaches the file
    "wal.append.torn",    # mid-append: only half the record lands
    "wal.fsync",          # record written, crash before the fsync
    "wal.commit",         # before the COMMIT record is appended
    "block.split",        # right after a data block split (§9.2)
    "descriptor.unlink",  # mid-delete, before a descriptor unlinks
    "persist.write",      # before the checkpoint temp file is written
    "persist.write.torn", # mid checkpoint write: half the image lands
    "persist.rename",     # before the atomic checkpoint rename
    "index.update",       # before an incremental secondary-index update
    "index.rebuild",      # inside a full secondary-index (re)build scan
})


class CrashError(RuntimeError):
    """Simulated process death at a crash point.

    Not a ``ReproError`` on purpose: recovery code and transaction
    rollback must never catch it by accident.
    """

    def __init__(self, point: str) -> None:
        self.point = point
        super().__init__(f"simulated crash at {point!r}")


class FaultPlan:
    """A deterministic schedule of crashes over the named points."""

    def __init__(self, seed: Optional[int] = None, rate: float = 0.0,
                 points: Optional[frozenset[str] | set[str]] = None
                 ) -> None:
        if points:
            unknown = set(points) - CRASH_POINTS
            if unknown:
                raise ValueError(f"unknown crash points: {sorted(unknown)}")
        self._armed: dict[str, int] = {}
        self._rng = random.Random(seed) if seed is not None else None
        self._rate = rate
        self._points = frozenset(points) if points else CRASH_POINTS
        self.hits: Counter[str] = Counter()
        #: (point, hit index) pairs where this plan decided to crash.
        self.fired: list[tuple[str, int]] = []

    @classmethod
    def probabilistic(cls, seed: int, rate: float = 0.05,
                      points: Optional[set[str]] = None) -> "FaultPlan":
        """A seeded coin-flip plan: crash with *rate* at each point."""
        return cls(seed=seed, rate=rate, points=points)

    def crash_at(self, point: str, hit: int = 1) -> "FaultPlan":
        """Arm a targeted crash: die the *hit*-th time *point* fires."""
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        if hit < 1:
            raise ValueError("hit counts are 1-based")
        self._armed[point] = hit
        return self

    def should_crash(self, point: str) -> bool:
        """One passage through *point*: does the plan kill here?"""
        self.hits[point] += 1
        armed = self._armed.get(point)
        if armed is not None and self.hits[point] == armed:
            self.fired.append((point, self.hits[point]))
            return True
        if (self._rng is not None and point in self._points
                and self._rng.random() < self._rate):
            self.fired.append((point, self.hits[point]))
            return True
        return False

    def __repr__(self) -> str:
        targeted = {p: h for p, h in self._armed.items()}
        return (f"FaultPlan(targeted={targeted}, rate={self._rate}, "
                f"fired={len(self.fired)})")


#: The active plan.  ``None`` (the default) makes every instrumented
#: site a single attribute test — production paths pay nothing.
ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Arm *plan* process-wide."""
    global ACTIVE
    ACTIVE = plan


def clear() -> None:
    """Disarm fault injection."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped installation: ``with faults.injected(plan): ...``."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def fire(point: str) -> None:
    """Crash here if the active plan says so (no-op otherwise)."""
    plan = ACTIVE
    if plan is not None and plan.should_crash(point):
        raise CrashError(point)


def wants(point: str) -> bool:
    """Non-raising probe for torn-write points.

    The caller performs the partial write itself and then raises
    :class:`CrashError` — see ``wal.append`` and the checkpoint writer.
    """
    plan = ACTIVE
    return plan is not None and plan.should_crash(point)
