"""Deterministic fault injection for the durability layer.

The crash model is the standard one for write-ahead logging: a crash
destroys everything in memory and leaves the *files* (checkpoint image
and WAL) exactly as far as they were written.  The harness simulates
the kill in-process: an armed :class:`FaultPlan` makes the named crash
point raise :class:`CrashError`, the test discards the engine object
(that is the "memory dies" part), and recovery must reconstruct a
consistent engine from the files alone.

:class:`CrashError` deliberately does **not** derive from
``ReproError`` — a simulated process death must never be swallowed by
the library's own ``except ReproError`` handlers (or by a rollback
path); it has to unwind like a SIGKILL.

Two injection styles:

* *targeted* — ``FaultPlan().crash_at("wal.append", hit=2)`` kills the
  process model at the second WAL append; the crash-matrix tests walk
  every named point this way;
* *probabilistic* — ``FaultPlan.probabilistic(seed=7, rate=0.05)``
  flips a seeded coin at every point it passes, for randomized
  convergence sweeps.  Same seed, same crashes: fully deterministic.

The instrumented sites call :func:`fire` (crash-before-effect) or, for
torn writes, :func:`wants` followed by a deliberate partial write and
an explicit raise — that is how the tests produce half-written WAL
records and checkpoint images.

**Threads.** The session layer runs many sessions concurrently, and a
probabilistic plan shared across threads is not reproducible: the hit
order (and therefore the RNG draw each hit consumes) depends on the
scheduler.  Two mechanisms restore determinism:

* every plan's bookkeeping is lock-guarded, so shared counters stay
  coherent (a shared *targeted* plan is deterministic as long as only
  one thread can reach the armed point);
* :meth:`FaultPlan.split` derives an independent child plan whose seed
  is a pure function of ``(parent seed, key)``, and
  :func:`install_local` arms a plan for the calling thread only —
  each session thread installs ``plan.split(session_name)`` and its
  crash schedule depends on nothing but its own passage sequence.

A thread-local plan overrides the process-wide one; :func:`fire` and
:func:`wants` consult the thread's plan first.
"""

from __future__ import annotations

import hashlib
import random
import threading
from collections import Counter
from contextlib import contextmanager
from typing import Iterator, Optional

#: Crash points owned by the session layer (``repro.server``).  They
#: are part of :data:`CRASH_POINTS` so plans validate against them, but
#: the storage-only crash-matrix workload never reaches them — the
#: session crash matrix (``tests/test_server_faults.py``) does.
SESSION_CRASH_POINTS = frozenset({
    "session.lease.granted",    # lease granted, crash before the first
                                # WAL record of the session's txn
    "session.txn.mid",          # lease holder dies mid-transaction,
                                # after at least one logged operation
    "session.reader.checkpoint" # checkpoint advances while a reader
                                # still pins an older snapshot
})

#: Every named crash point threaded through the storage layer.  The
#: crash-matrix test parametrizes over exactly this set (minus the
#: session points, which have their own matrix), so adding a point
#: here without instrumenting a site fails the suite.
CRASH_POINTS = frozenset({
    "wal.append",         # before a WAL record reaches the file
    "wal.append.torn",    # mid-append: only half the record lands
    "wal.fsync",          # record written, crash before the fsync
    "wal.commit",         # before the COMMIT record is appended
    "block.split",        # right after a data block split (§9.2)
    "descriptor.unlink",  # mid-delete, before a descriptor unlinks
    "persist.write",      # before the checkpoint temp file is written
    "persist.write.torn", # mid checkpoint write: half the image lands
    "persist.rename",     # before the atomic checkpoint rename
    "index.update",       # before an incremental secondary-index update
    "index.rebuild",      # inside a full secondary-index (re)build scan
}) | SESSION_CRASH_POINTS


class CrashError(RuntimeError):
    """Simulated process death at a crash point.

    Not a ``ReproError`` on purpose: recovery code and transaction
    rollback must never catch it by accident.
    """

    def __init__(self, point: str) -> None:
        self.point = point
        super().__init__(f"simulated crash at {point!r}")


def derive_seed(seed: Optional[int], key: str) -> int:
    """A child seed as a pure function of ``(seed, key)``.

    SHA-256 over the canonical text, truncated to 64 bits — stable
    across runs, interpreters and machines, unlike ``hash()``.
    """
    digest = hashlib.sha256(f"{seed}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class FaultPlan:
    """A deterministic schedule of crashes over the named points."""

    def __init__(self, seed: Optional[int] = None, rate: float = 0.0,
                 points: Optional[frozenset[str] | set[str]] = None
                 ) -> None:
        if points:
            unknown = set(points) - CRASH_POINTS
            if unknown:
                raise ValueError(f"unknown crash points: {sorted(unknown)}")
        self._armed: dict[str, int] = {}
        #: The explicit seed this plan was built from (``None`` for a
        #: purely targeted plan) — retained so :meth:`split` can derive
        #: per-thread children deterministically.
        self.seed = seed
        self._rng = random.Random(seed) if seed is not None else None
        self._rate = rate
        self._points = frozenset(points) if points else CRASH_POINTS
        #: Guards hits/fired/RNG: a plan shared across session threads
        #: keeps coherent counts (determinism per thread comes from
        #: :meth:`split`, not from this lock).
        self._lock = threading.Lock()
        self.hits: Counter[str] = Counter()
        #: (point, hit index) pairs where this plan decided to crash.
        self.fired: list[tuple[str, int]] = []

    @classmethod
    def probabilistic(cls, seed: int, rate: float = 0.05,
                      points: Optional[set[str]] = None) -> "FaultPlan":
        """A seeded coin-flip plan: crash with *rate* at each point.

        The seed is an explicit parameter — never module-global state —
        so multi-threaded sweeps stay reproducible: give each thread
        ``plan.split(thread_name)`` (or build per-thread plans with
        per-thread seeds) and install them with :func:`install_local`.
        """
        return cls(seed=seed, rate=rate, points=points)

    def split(self, key: str) -> "FaultPlan":
        """An independent child plan for one thread/session.

        The child inherits rate, point filter and targeted arms; its
        RNG seed is :func:`derive_seed` of ``(self.seed, key)`` — the
        same parent plan and key always yield the same child schedule,
        whatever the other threads do.
        """
        child = FaultPlan(seed=derive_seed(self.seed, key),
                          rate=self._rate, points=self._points)
        child._armed = dict(self._armed)
        return child

    def crash_at(self, point: str, hit: int = 1) -> "FaultPlan":
        """Arm a targeted crash: die the *hit*-th time *point* fires."""
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}")
        if hit < 1:
            raise ValueError("hit counts are 1-based")
        self._armed[point] = hit
        return self

    def should_crash(self, point: str) -> bool:
        """One passage through *point*: does the plan kill here?"""
        with self._lock:
            self.hits[point] += 1
            armed = self._armed.get(point)
            if armed is not None and self.hits[point] == armed:
                self.fired.append((point, self.hits[point]))
                return True
            if (self._rng is not None and point in self._points
                    and self._rng.random() < self._rate):
                self.fired.append((point, self.hits[point]))
                return True
            return False

    def __repr__(self) -> str:
        targeted = {p: h for p, h in self._armed.items()}
        return (f"FaultPlan(targeted={targeted}, rate={self._rate}, "
                f"seed={self.seed}, fired={len(self.fired)})")


#: The active plan.  ``None`` (the default) makes every instrumented
#: site a single attribute test — production paths pay nothing.
ACTIVE: Optional[FaultPlan] = None

_LOCAL = threading.local()


def install(plan: FaultPlan) -> None:
    """Arm *plan* process-wide."""
    global ACTIVE
    ACTIVE = plan


def clear() -> None:
    """Disarm process-wide fault injection."""
    global ACTIVE
    ACTIVE = None


def install_local(plan: FaultPlan) -> None:
    """Arm *plan* for the calling thread only (overrides the global)."""
    _LOCAL.plan = plan


def clear_local() -> None:
    """Disarm the calling thread's local plan."""
    _LOCAL.plan = None


def _active() -> Optional[FaultPlan]:
    # One uncounted thread-local read: cheap, and — unlike a shared
    # installation counter — immune to lost updates from concurrent
    # session threads silently disabling injection mid-sweep.
    local = getattr(_LOCAL, "plan", None)
    return local if local is not None else ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped installation: ``with faults.injected(plan): ...``."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


@contextmanager
def injected_local(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped thread-local installation (session fault tests)."""
    install_local(plan)
    try:
        yield plan
    finally:
        clear_local()


def fire(point: str) -> None:
    """Crash here if the active plan says so (no-op otherwise)."""
    plan = _active()
    if plan is not None and plan.should_crash(point):
        raise CrashError(point)


def wants(point: str) -> bool:
    """Non-raising probe for torn-write points.

    The caller performs the partial write itself and then raises
    :class:`CrashError` — see ``wal.append`` and the checkpoint writer.
    """
    plan = _active()
    return plan is not None and plan.should_crash(point)
