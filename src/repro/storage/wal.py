"""A binary write-ahead log of logical update records.

Sedna pairs the §9 physical layout with logging and recovery; this
module is the logging half.  Every engine mutation appends one
*logical* record — insert/set-attribute/delete expressed in terms of
numbering labels (nids), which Proposition 1 guarantees are stable —
**before** the in-memory structures change, so a crash at any point
leaves a log that replays to exactly the committed state.

Log layout (little-endian, medium-independent)::

    header:  magic "SEDNAWAL", version u16
    record:  payload_len u32, crc32(payload) u32, payload
    payload: lsn u64, kind u8, txn u64, body (per kind)

The *medium* is pluggable: :class:`WriteAheadLog` drives a
:class:`WalStore` — :class:`FileWalStore` (one append-only file, the
classic shape), :class:`MemoryWalStore` (hermetic tests), or the
sqlite-rows store of :mod:`repro.storage.backends.sqlite`.  Every
store exposes the log as one byte stream, so the framing, the
torn-tail rule and the scanner below are written once and hold for
all of them.

Record kinds: BEGIN / COMMIT / ABORT frame transactions;
INSERT_ELEMENT / INSERT_TEXT / SET_ATTRIBUTE / DELETE are the logical
updates; CREATE_INDEX / DROP_INDEX log secondary-index DDL (contents
are derived state and never logged); LOAD marks a bulk load whose
nodes bypassed per-op logging (valid only under the very next
checkpoint's horizon); CHECKPOINT marks a log reset after an image
checkpoint.

Torn-tail semantics: :func:`read_wal` stops at the first record whose
frame is incomplete or whose CRC32 does not match, reporting the valid
prefix length.  Opening a log for append truncates such a tail first,
so new records are never written behind garbage.

LSNs are monotone across the life of the log, *including* checkpoint
resets — the checkpoint image stores the LSN it covers, and recovery
replays only records beyond it, which makes the
crash-between-rename-and-log-reset window idempotent.
"""

from __future__ import annotations

import os
import struct
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro import obs
from repro.errors import StorageError
from repro.storage import faults
from repro.storage.codec import Reader, encode_frame, iter_frames, \
    pack_nid, pack_text
from repro.storage.faults import CrashError
from repro.storage.labels import NidLabel
from repro.xmlio.qname import QName

_MAGIC = b"SEDNAWAL"
_VERSION = 1
_HEADER = _MAGIC + struct.pack("<H", _VERSION)
_HEADER_LEN = len(_HEADER)

# Record kinds.
BEGIN = 1
COMMIT = 2
ABORT = 3
INSERT_ELEMENT = 4
INSERT_TEXT = 5
SET_ATTRIBUTE = 6
DELETE = 7
CHECKPOINT = 8
CREATE_INDEX = 9
DROP_INDEX = 10
LOAD = 11

#: The kinds recovery replays (everything else is framing).
OP_KINDS = frozenset({INSERT_ELEMENT, INSERT_TEXT, SET_ATTRIBUTE, DELETE})

#: Index DDL — replayed by recovery like data ops, but handled
#: separately because they mutate definitions, not descriptors.
DDL_KINDS = frozenset({CREATE_INDEX, DROP_INDEX})

_KIND_NAMES = {
    BEGIN: "begin", COMMIT: "commit", ABORT: "abort",
    INSERT_ELEMENT: "insert-element", INSERT_TEXT: "insert-text",
    SET_ATTRIBUTE: "set-attribute", DELETE: "delete",
    CHECKPOINT: "checkpoint", CREATE_INDEX: "create-index",
    DROP_INDEX: "drop-index", LOAD: "load",
}


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record (fields unused by the kind stay None)."""

    lsn: int
    kind: int
    txn: int
    parent_nid: Optional[NidLabel] = None
    nid: Optional[NidLabel] = None
    index: int = 0
    name: Optional[QName] = None
    text: Optional[str] = None
    replace: bool = False
    checkpoint_lsn: int = 0
    #: Index DDL fields (CREATE_INDEX / DROP_INDEX).
    index_path: Optional[str] = None
    index_kind: Optional[str] = None
    value_type: Optional[str] = None
    #: Bulk-load marker (LOAD): nodes loaded outside per-op logging.
    node_count: int = 0

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"kind-{self.kind}")


@dataclass
class WalScan:
    """The result of reading a log."""

    records: list[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0

    def committed_txns(self) -> set[int]:
        return {r.txn for r in self.records if r.kind == COMMIT}

    def aborted_txns(self) -> set[int]:
        return {r.txn for r in self.records if r.kind == ABORT}


# ----------------------------------------------------------------------
# Payload decoding.


def _decode_payload(payload: bytes, backend: str = "file") -> WalRecord:
    reader = Reader(payload, backend=backend, what="WAL payload")
    lsn = reader.u64()
    kind = reader.u8()
    txn = reader.u64()
    if kind in (BEGIN, COMMIT, ABORT):
        return WalRecord(lsn, kind, txn)
    if kind == INSERT_ELEMENT:
        parent = reader.nid()
        index = reader.u32()
        name = QName(reader.text(), reader.text())
        return WalRecord(lsn, kind, txn, parent_nid=parent, index=index,
                         name=name, nid=reader.nid())
    if kind == INSERT_TEXT:
        parent = reader.nid()
        index = reader.u32()
        text = reader.text()
        return WalRecord(lsn, kind, txn, parent_nid=parent, index=index,
                         text=text, nid=reader.nid())
    if kind == SET_ATTRIBUTE:
        parent = reader.nid()
        name = QName(reader.text(), reader.text())
        value = reader.text()
        replace = bool(reader.u8())
        return WalRecord(lsn, kind, txn, parent_nid=parent, name=name,
                         text=value, replace=replace, nid=reader.nid())
    if kind == DELETE:
        return WalRecord(lsn, kind, txn, nid=reader.nid())
    if kind == CHECKPOINT:
        return WalRecord(lsn, kind, txn, checkpoint_lsn=reader.u64())
    if kind == CREATE_INDEX:
        return WalRecord(lsn, kind, txn, index_path=reader.text(),
                         index_kind=reader.text(),
                         value_type=reader.text())
    if kind == DROP_INDEX:
        return WalRecord(lsn, kind, txn, index_path=reader.text(),
                         index_kind=reader.text())
    if kind == LOAD:
        return WalRecord(lsn, kind, txn, node_count=reader.u64())
    raise StorageError(f"unknown WAL record kind {kind}")


# ----------------------------------------------------------------------
# Pluggable log media.


class WalStore(ABC):
    """Where the log bytes live.

    Every store presents the log as **one byte stream** beginning with
    the "SEDNAWAL" header, whatever rows or buffers hold it underneath
    — that is what lets the framing, torn-tail scan and truncation
    logic live in exactly one place.  ``append`` must make the chunk
    visible to a subsequent ``load`` (the OS-buffer analogue);
    ``sync`` is the durability barrier (the fsync analogue).
    """

    #: Label carried by corruption errors out of this medium.
    backend: str = "?"

    @abstractmethod
    def load(self) -> bytes:
        """The full current log contents (``b""`` if absent/empty)."""

    @abstractmethod
    def append(self, chunk: bytes) -> None:
        """Append *chunk* (a whole frame, or a deliberately torn
        fragment under fault injection) to the stream."""

    @abstractmethod
    def sync(self) -> None:
        """Durability barrier for everything appended so far."""

    @abstractmethod
    def truncate(self, valid_bytes: int) -> None:
        """Drop every byte at or beyond *valid_bytes* (torn tail)."""

    @abstractmethod
    def reset(self, header: bytes) -> None:
        """Restart the log: only *header* remains."""

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    @abstractmethod
    def describe(self) -> str:
        """Human-readable address of the log (path, table, ...)."""


class FileWalStore(WalStore):
    """The classic shape: one append-only file."""

    backend = "file"

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._file = None

    def load(self) -> bytes:
        if not self.path.exists():
            return b""
        return self.path.read_bytes()

    def _handle(self):
        if self._file is None or self._file.closed:
            self._file = open(self.path, "ab")
        return self._file

    def append(self, chunk: bytes) -> None:
        handle = self._handle()
        handle.write(chunk)
        handle.flush()

    def sync(self) -> None:
        os.fsync(self._handle().fileno())

    def truncate(self, valid_bytes: int) -> None:
        # Never append behind garbage: drop the torn tail.
        with open(self.path, "r+b") as handle:
            handle.truncate(valid_bytes)

    def reset(self, header: bytes) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()
        self._file = open(self.path, "wb")
        self._file.write(header)
        self._file.flush()

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.flush()
            self._file.close()

    def describe(self) -> str:
        return str(self.path)


class MemoryWalStore(WalStore):
    """A log held in a bytearray — hermetic tests, no filesystem."""

    backend = "memory"

    def __init__(self) -> None:
        self._buffer = bytearray()

    def load(self) -> bytes:
        return bytes(self._buffer)

    def append(self, chunk: bytes) -> None:
        self._buffer += chunk

    def sync(self) -> None:
        pass

    def truncate(self, valid_bytes: int) -> None:
        del self._buffer[valid_bytes:]

    def reset(self, header: bytes) -> None:
        self._buffer[:] = header

    def describe(self) -> str:
        return "<memory WAL>"


# ----------------------------------------------------------------------
# Scanning.


def scan_wal(data: bytes, describe: str = "WAL",
             backend: str = "file") -> WalScan:
    """Scan one log byte stream up to the first torn/corrupt record."""
    if not data:
        return WalScan()
    if len(data) < _HEADER_LEN or data[:len(_MAGIC)] != _MAGIC:
        raise StorageError(
            f"{describe} is not a write-ahead log (bad magic)")
    version = struct.unpack_from("<H", data, len(_MAGIC))[0]
    if version != _VERSION:
        raise StorageError(f"unsupported WAL version {version}")
    scan = WalScan(valid_bytes=_HEADER_LEN)
    for payload, end in iter_frames(data, start=_HEADER_LEN):
        scan.records.append(_decode_payload(payload, backend=backend))
        scan.valid_bytes = end
    scan.torn_bytes = len(data) - scan.valid_bytes
    return scan


def read_wal(path: str | os.PathLike) -> WalScan:
    """Scan a log file up to the first torn or corrupt record."""
    path = Path(path)
    if not path.exists():
        return WalScan()
    return scan_wal(path.read_bytes(), describe=str(path))


def read_wal_store(store: WalStore) -> WalScan:
    """Scan any log store up to the first torn or corrupt record."""
    return scan_wal(store.load(), describe=store.describe(),
                    backend=store.backend)


class WriteAheadLog:
    """An append-only log with per-record CRC32 and monotone LSNs.

    *target* is a file path (wrapped in a :class:`FileWalStore`, the
    historical constructor) or any :class:`WalStore`.  ``sync=False``
    skips the per-record durability barrier (the benchmarks use it to
    separate the logging tax from the disk tax); the bytes still reach
    the store on every append.
    """

    def __init__(self, target: str | os.PathLike | WalStore,
                 sync: bool = True) -> None:
        if isinstance(target, WalStore):
            self.store = target
        else:
            self.store = FileWalStore(target)
        self.sync = sync
        self.last_lsn = 0
        self.appends = 0
        self.bytes_written = 0
        self._closed = False
        existing = self.store.load()
        if existing:
            scan = scan_wal(existing, describe=self.store.describe(),
                            backend=self.store.backend)
            if scan.records:
                self.last_lsn = scan.records[-1].lsn
            if scan.torn:
                # Never append behind garbage: drop the torn tail.
                self.store.truncate(scan.valid_bytes)
        else:
            self.store.reset(_HEADER)

    @property
    def path(self) -> Optional[Path]:
        """The log file for file-backed stores (None otherwise)."""
        return getattr(self.store, "path", None)

    # -- the one write path ---------------------------------------------

    def _append(self, kind: int, txn: int, body: bytes) -> int:
        if self._closed:
            raise StorageError("write-ahead log is closed")
        recording = obs.RECORDING
        started = time.perf_counter_ns() if recording else 0
        lsn = self.last_lsn + 1
        payload = struct.pack("<QBQ", lsn, kind, txn) + body
        frame = encode_frame(payload)
        faults.fire("wal.append")
        if faults.wants("wal.append.torn"):
            # A torn write: half the frame lands, then the process dies.
            self.store.append(frame[:max(1, len(frame) // 2)])
            raise CrashError("wal.append.torn")
        self.store.append(frame)
        faults.fire("wal.fsync")
        if self.sync:
            if recording:
                sync_started = time.perf_counter_ns()
                self.store.sync()
                obs.REGISTRY.histogram("wal.sync.ns").observe(
                    time.perf_counter_ns() - sync_started)
            else:
                self.store.sync()
        self.last_lsn = lsn
        self.appends += 1
        self.bytes_written += len(frame)
        if recording:
            registry = obs.REGISTRY
            registry.counter("wal.appends").inc()
            registry.counter("wal.bytes").inc(len(frame))
            registry.histogram("wal.append.ns").observe(
                time.perf_counter_ns() - started)
        return lsn

    # -- record constructors --------------------------------------------

    def append_begin(self, txn: int) -> int:
        return self._append(BEGIN, txn, b"")

    def append_commit(self, txn: int) -> int:
        faults.fire("wal.commit")
        return self._append(COMMIT, txn, b"")

    def append_abort(self, txn: int) -> int:
        return self._append(ABORT, txn, b"")

    def append_insert_element(self, txn: int, parent_nid: NidLabel,
                              index: int, name: QName,
                              nid: NidLabel) -> int:
        body = bytearray()
        pack_nid(body, parent_nid)
        body += struct.pack("<I", index)
        pack_text(body, name.uri)
        pack_text(body, name.local)
        pack_nid(body, nid)
        return self._append(INSERT_ELEMENT, txn, bytes(body))

    def append_insert_text(self, txn: int, parent_nid: NidLabel,
                           index: int, text: str, nid: NidLabel) -> int:
        body = bytearray()
        pack_nid(body, parent_nid)
        body += struct.pack("<I", index)
        pack_text(body, text)
        pack_nid(body, nid)
        return self._append(INSERT_TEXT, txn, bytes(body))

    def append_set_attribute(self, txn: int, parent_nid: NidLabel,
                             name: QName, value: str, nid: NidLabel,
                             replace: bool) -> int:
        body = bytearray()
        pack_nid(body, parent_nid)
        pack_text(body, name.uri)
        pack_text(body, name.local)
        pack_text(body, value)
        body += struct.pack("<B", 1 if replace else 0)
        pack_nid(body, nid)
        return self._append(SET_ATTRIBUTE, txn, bytes(body))

    def append_delete(self, txn: int, nid: NidLabel) -> int:
        body = bytearray()
        pack_nid(body, nid)
        return self._append(DELETE, txn, bytes(body))

    def append_create_index(self, txn: int, path: str, kind: str,
                            value_type: str) -> int:
        body = bytearray()
        pack_text(body, path)
        pack_text(body, kind)
        pack_text(body, value_type)
        return self._append(CREATE_INDEX, txn, bytes(body))

    def append_drop_index(self, txn: int, path: str, kind: str) -> int:
        body = bytearray()
        pack_text(body, path)
        pack_text(body, kind)
        return self._append(DROP_INDEX, txn, bytes(body))

    def append_load(self, txn: int, node_count: int) -> int:
        """The bulk-load marker: *node_count* nodes entered the engine
        without per-op records; a checkpoint must follow immediately
        (recovery refuses a committed LOAD past the horizon)."""
        return self._append(LOAD, txn, struct.pack("<Q", node_count))

    # -- checkpoint reset ------------------------------------------------

    def reset(self, checkpoint_lsn: int) -> None:
        """Start a fresh log after a checkpoint covering *checkpoint_lsn*.

        The store is restarted with just the header; the first record
        is a CHECKPOINT marker.  LSNs keep counting up, so every record
        in the fresh log is strictly beyond the image's horizon.
        """
        self.store.reset(_HEADER)
        self._append(CHECKPOINT, 0, struct.pack("<Q", checkpoint_lsn))

    def close(self) -> None:
        self._closed = True
        self.store.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"WriteAheadLog({self.store.describe()!r}, "
                f"lsn={self.last_lsn}, appends={self.appends})")
