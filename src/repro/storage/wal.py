"""A binary write-ahead log of logical update records.

Sedna pairs the §9 physical layout with logging and recovery; this
module is the logging half.  Every engine mutation appends one
*logical* record — insert/set-attribute/delete expressed in terms of
numbering labels (nids), which Proposition 1 guarantees are stable —
**before** the in-memory structures change, so a crash at any point
leaves a log that replays to exactly the committed state.

File layout (little-endian)::

    header:  magic "SEDNAWAL", version u16
    record:  payload_len u32, crc32(payload) u32, payload
    payload: lsn u64, kind u8, txn u64, body (per kind)

Record kinds: BEGIN / COMMIT / ABORT frame transactions;
INSERT_ELEMENT / INSERT_TEXT / SET_ATTRIBUTE / DELETE are the logical
updates; CREATE_INDEX / DROP_INDEX log secondary-index DDL (contents
are derived state and never logged); LOAD marks a bulk load whose
nodes bypassed per-op logging (valid only under the very next
checkpoint's horizon); CHECKPOINT marks a log reset after an image
checkpoint.

Torn-tail semantics: :func:`read_wal` stops at the first record whose
frame is incomplete or whose CRC32 does not match, reporting the valid
prefix length.  Opening a log for append truncates such a tail first,
so new records are never written behind garbage.

LSNs are monotone across the life of the log, *including* checkpoint
resets — the checkpoint image stores the LSN it covers, and recovery
replays only records beyond it, which makes the
crash-between-rename-and-log-reset window idempotent.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro import obs
from repro.errors import StorageError
from repro.storage import faults
from repro.storage.faults import CrashError
from repro.storage.labels import NidLabel
from repro.xmlio.qname import QName

_MAGIC = b"SEDNAWAL"
_VERSION = 1
_HEADER_LEN = len(_MAGIC) + 2

# Record kinds.
BEGIN = 1
COMMIT = 2
ABORT = 3
INSERT_ELEMENT = 4
INSERT_TEXT = 5
SET_ATTRIBUTE = 6
DELETE = 7
CHECKPOINT = 8
CREATE_INDEX = 9
DROP_INDEX = 10
LOAD = 11

#: The kinds recovery replays (everything else is framing).
OP_KINDS = frozenset({INSERT_ELEMENT, INSERT_TEXT, SET_ATTRIBUTE, DELETE})

#: Index DDL — replayed by recovery like data ops, but handled
#: separately because they mutate definitions, not descriptors.
DDL_KINDS = frozenset({CREATE_INDEX, DROP_INDEX})

_KIND_NAMES = {
    BEGIN: "begin", COMMIT: "commit", ABORT: "abort",
    INSERT_ELEMENT: "insert-element", INSERT_TEXT: "insert-text",
    SET_ATTRIBUTE: "set-attribute", DELETE: "delete",
    CHECKPOINT: "checkpoint", CREATE_INDEX: "create-index",
    DROP_INDEX: "drop-index", LOAD: "load",
}


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record (fields unused by the kind stay None)."""

    lsn: int
    kind: int
    txn: int
    parent_nid: Optional[NidLabel] = None
    nid: Optional[NidLabel] = None
    index: int = 0
    name: Optional[QName] = None
    text: Optional[str] = None
    replace: bool = False
    checkpoint_lsn: int = 0
    #: Index DDL fields (CREATE_INDEX / DROP_INDEX).
    index_path: Optional[str] = None
    index_kind: Optional[str] = None
    value_type: Optional[str] = None
    #: Bulk-load marker (LOAD): nodes loaded outside per-op logging.
    node_count: int = 0

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"kind-{self.kind}")


@dataclass
class WalScan:
    """The result of reading a log file."""

    records: list[WalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0

    def committed_txns(self) -> set[int]:
        return {r.txn for r in self.records if r.kind == COMMIT}

    def aborted_txns(self) -> set[int]:
        return {r.txn for r in self.records if r.kind == ABORT}


# ----------------------------------------------------------------------
# Encoding helpers.


def _pack_nid(out: bytearray, nid: NidLabel) -> None:
    out += struct.pack("<H", len(nid.components))
    for component in nid.components:
        out += struct.pack("<H", len(component))
        for digit in component:
            out += struct.pack("<H", digit)


def _pack_text(out: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    out += struct.pack("<I", len(data))
    out += data


class _PayloadReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise StorageError(
                f"malformed WAL payload at byte {self._pos}")
        chunk = self._data[self._pos:self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def nid(self) -> NidLabel:
        count = self.u16()
        components = []
        for _ in range(count):
            length = self.u16()
            components.append(tuple(self.u16() for _ in range(length)))
        return NidLabel(tuple(components))

    def text(self) -> str:
        return self._take(self.u32()).decode("utf-8")


def _decode_payload(payload: bytes) -> WalRecord:
    reader = _PayloadReader(payload)
    lsn = reader.u64()
    kind = reader.u8()
    txn = reader.u64()
    if kind in (BEGIN, COMMIT, ABORT):
        return WalRecord(lsn, kind, txn)
    if kind == INSERT_ELEMENT:
        parent = reader.nid()
        index = reader.u32()
        name = QName(reader.text(), reader.text())
        return WalRecord(lsn, kind, txn, parent_nid=parent, index=index,
                         name=name, nid=reader.nid())
    if kind == INSERT_TEXT:
        parent = reader.nid()
        index = reader.u32()
        text = reader.text()
        return WalRecord(lsn, kind, txn, parent_nid=parent, index=index,
                         text=text, nid=reader.nid())
    if kind == SET_ATTRIBUTE:
        parent = reader.nid()
        name = QName(reader.text(), reader.text())
        value = reader.text()
        replace = bool(reader.u8())
        return WalRecord(lsn, kind, txn, parent_nid=parent, name=name,
                         text=value, replace=replace, nid=reader.nid())
    if kind == DELETE:
        return WalRecord(lsn, kind, txn, nid=reader.nid())
    if kind == CHECKPOINT:
        return WalRecord(lsn, kind, txn, checkpoint_lsn=reader.u64())
    if kind == CREATE_INDEX:
        return WalRecord(lsn, kind, txn, index_path=reader.text(),
                         index_kind=reader.text(),
                         value_type=reader.text())
    if kind == DROP_INDEX:
        return WalRecord(lsn, kind, txn, index_path=reader.text(),
                         index_kind=reader.text())
    if kind == LOAD:
        return WalRecord(lsn, kind, txn, node_count=reader.u64())
    raise StorageError(f"unknown WAL record kind {kind}")


def read_wal(path: str | os.PathLike) -> WalScan:
    """Scan a log file up to the first torn or corrupt record."""
    path = Path(path)
    if not path.exists():
        return WalScan()
    data = path.read_bytes()
    if not data:
        return WalScan()
    if len(data) < _HEADER_LEN or data[:len(_MAGIC)] != _MAGIC:
        raise StorageError(f"{path} is not a write-ahead log (bad magic)")
    version = struct.unpack_from("<H", data, len(_MAGIC))[0]
    if version != _VERSION:
        raise StorageError(f"unsupported WAL version {version}")
    scan = WalScan(valid_bytes=_HEADER_LEN)
    pos = _HEADER_LEN
    while pos < len(data):
        if pos + 8 > len(data):
            break  # torn frame header
        length, crc = struct.unpack_from("<II", data, pos)
        if pos + 8 + length > len(data):
            break  # torn payload
        payload = data[pos + 8:pos + 8 + length]
        if zlib.crc32(payload) != crc:
            break  # corrupt payload: treat as torn tail
        scan.records.append(_decode_payload(payload))
        pos += 8 + length
        scan.valid_bytes = pos
    scan.torn_bytes = len(data) - scan.valid_bytes
    return scan


class WriteAheadLog:
    """An append-only log file with per-record CRC32 and monotone LSNs.

    ``sync=False`` skips the per-record ``fsync`` (the benchmarks use
    it to separate the logging tax from the disk tax); the bytes still
    reach the OS on every append via ``flush``.
    """

    def __init__(self, path: str | os.PathLike, sync: bool = True) -> None:
        self.path = Path(path)
        self.sync = sync
        self.last_lsn = 0
        self.appends = 0
        self.bytes_written = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            scan = read_wal(self.path)
            if scan.records:
                self.last_lsn = scan.records[-1].lsn
            if scan.torn:
                # Never append behind garbage: drop the torn tail.
                with open(self.path, "r+b") as handle:
                    handle.truncate(scan.valid_bytes)
            self._file = open(self.path, "ab")
        else:
            self._file = open(self.path, "wb")
            self._write_header()

    def _write_header(self) -> None:
        self._file.write(_MAGIC + struct.pack("<H", _VERSION))
        self._file.flush()

    # -- the one write path ---------------------------------------------

    def _append(self, kind: int, txn: int, body: bytes) -> int:
        if self._file.closed:
            raise StorageError("write-ahead log is closed")
        lsn = self.last_lsn + 1
        payload = bytearray(struct.pack("<QBQ", lsn, kind, txn))
        payload += body
        frame = struct.pack("<II", len(payload),
                            zlib.crc32(bytes(payload))) + payload
        faults.fire("wal.append")
        if faults.wants("wal.append.torn"):
            # A torn write: half the frame lands, then the process dies.
            self._file.write(frame[:max(1, len(frame) // 2)])
            self._file.flush()
            raise CrashError("wal.append.torn")
        self._file.write(frame)
        self._file.flush()
        faults.fire("wal.fsync")
        if self.sync:
            os.fsync(self._file.fileno())
        self.last_lsn = lsn
        self.appends += 1
        self.bytes_written += len(frame)
        if obs.ENABLED:
            obs.REGISTRY.counter("wal.appends").inc()
            obs.REGISTRY.counter("wal.bytes").inc(len(frame))
        return lsn

    # -- record constructors --------------------------------------------

    def append_begin(self, txn: int) -> int:
        return self._append(BEGIN, txn, b"")

    def append_commit(self, txn: int) -> int:
        faults.fire("wal.commit")
        return self._append(COMMIT, txn, b"")

    def append_abort(self, txn: int) -> int:
        return self._append(ABORT, txn, b"")

    def append_insert_element(self, txn: int, parent_nid: NidLabel,
                              index: int, name: QName,
                              nid: NidLabel) -> int:
        body = bytearray()
        _pack_nid(body, parent_nid)
        body += struct.pack("<I", index)
        _pack_text(body, name.uri)
        _pack_text(body, name.local)
        _pack_nid(body, nid)
        return self._append(INSERT_ELEMENT, txn, bytes(body))

    def append_insert_text(self, txn: int, parent_nid: NidLabel,
                           index: int, text: str, nid: NidLabel) -> int:
        body = bytearray()
        _pack_nid(body, parent_nid)
        body += struct.pack("<I", index)
        _pack_text(body, text)
        _pack_nid(body, nid)
        return self._append(INSERT_TEXT, txn, bytes(body))

    def append_set_attribute(self, txn: int, parent_nid: NidLabel,
                             name: QName, value: str, nid: NidLabel,
                             replace: bool) -> int:
        body = bytearray()
        _pack_nid(body, parent_nid)
        _pack_text(body, name.uri)
        _pack_text(body, name.local)
        _pack_text(body, value)
        body += struct.pack("<B", 1 if replace else 0)
        _pack_nid(body, nid)
        return self._append(SET_ATTRIBUTE, txn, bytes(body))

    def append_delete(self, txn: int, nid: NidLabel) -> int:
        body = bytearray()
        _pack_nid(body, nid)
        return self._append(DELETE, txn, bytes(body))

    def append_create_index(self, txn: int, path: str, kind: str,
                            value_type: str) -> int:
        body = bytearray()
        _pack_text(body, path)
        _pack_text(body, kind)
        _pack_text(body, value_type)
        return self._append(CREATE_INDEX, txn, bytes(body))

    def append_drop_index(self, txn: int, path: str, kind: str) -> int:
        body = bytearray()
        _pack_text(body, path)
        _pack_text(body, kind)
        return self._append(DROP_INDEX, txn, bytes(body))

    def append_load(self, txn: int, node_count: int) -> int:
        """The bulk-load marker: *node_count* nodes entered the engine
        without per-op records; a checkpoint must follow immediately
        (recovery refuses a committed LOAD past the horizon)."""
        return self._append(LOAD, txn, struct.pack("<Q", node_count))

    # -- checkpoint reset ------------------------------------------------

    def reset(self, checkpoint_lsn: int) -> None:
        """Start a fresh log after a checkpoint covering *checkpoint_lsn*.

        The file is truncated and re-headed; the first record is a
        CHECKPOINT marker.  LSNs keep counting up, so every record in
        the fresh log is strictly beyond the image's horizon.
        """
        self._file.close()
        self._file = open(self.path, "wb")
        self._write_header()
        self._append(CHECKPOINT, 0,
                     struct.pack("<Q", checkpoint_lsn))
        if self.sync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"WriteAheadLog({str(self.path)!r}, lsn={self.last_lsn}, "
                f"appends={self.appends})")
