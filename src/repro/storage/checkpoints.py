"""Dirty-block accounting for incremental checkpoints.

The §9 layout makes block-granular durability natural: an update
touches one block (or splits it), never shifts neighbours, so the set
of blocks whose *persisted* form changed since the last checkpoint is
small and cheap to track.  :class:`CheckpointTracker` is that set —
the engine marks a block on every mutation that changes what a
backend would store for it (slot membership, in-block order, a
descriptor's value or sibling links), and a backend that supports
incremental checkpoints drains the set into a dirty-block upsert
instead of a whole-image rewrite.

The diff is only valid relative to the *last checkpoint that consumed
it*, so draining is a consumer-scoped handshake: ``begin(consumer)``
returns ``(full, dirty_ids, dropped_ids)`` where ``full`` is True
whenever someone else (or no one) consumed the previous drain —
a backend seeing ``full`` must write everything.  ``complete()``
clears the set only after the checkpoint landed; a crash in between
leaves the blocks marked, and the next upsert simply rewrites them
(upserts are idempotent).  Monolithic consumers — the file backend
rewrites the whole image every time — never take part, so they don't
invalidate anyone else's diff.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.blocks import Block
    from repro.storage.descriptor import NodeDescriptor


class CheckpointTracker:
    """Which blocks changed (and which disappeared) since the last
    consumed checkpoint."""

    def __init__(self) -> None:
        self._dirty: set[int] = set()
        self._dropped: set[int] = set()
        self._consumer: Optional[str] = None

    # -- marking (engine side) ------------------------------------------

    def mark(self, block: "Optional[Block]") -> None:
        """The persisted form of *block* changed."""
        if block is not None:
            self._dirty.add(block.block_id)

    def mark_descriptor(self, descriptor: "Optional[NodeDescriptor]"
                        ) -> None:
        """A stored field of *descriptor* (value, sibling link)
        changed — its block must be rewritten."""
        if descriptor is not None and descriptor.block is not None:
            self._dirty.add(descriptor.block.block_id)

    def drop(self, block: "Block") -> None:
        """*block* was unlinked from its chain and holds nothing."""
        self._dirty.discard(block.block_id)
        self._dropped.add(block.block_id)

    # -- draining (backend side) ----------------------------------------

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def begin(self, consumer: str
              ) -> tuple[bool, frozenset[int], frozenset[int]]:
        """Open a checkpoint by *consumer*.

        Returns ``(full, dirty_ids, dropped_ids)``.  ``full`` is True
        when the pending diff is not relative to *consumer*'s own last
        checkpoint (first checkpoint, or another consumer drained in
        between) — the backend must then persist every block.
        """
        full = consumer != self._consumer
        return full, frozenset(self._dirty), frozenset(self._dropped)

    def complete(self, consumer: str) -> None:
        """The checkpoint landed durably: start the next diff."""
        self._consumer = consumer
        self._dirty.clear()
        self._dropped.clear()

    def __repr__(self) -> str:
        return (f"CheckpointTracker(dirty={len(self._dirty)}, "
                f"dropped={len(self._dropped)}, "
                f"consumer={self._consumer!r})")
