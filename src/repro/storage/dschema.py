"""The descriptive schema of Section 9.1 (a DataGuide [13]).

Formally (paper): schema nodes are pairs ``E = (name, type)`` and the
descriptive schema of a document tree X is the unique tree X' such that
every root-to-node path of X appears exactly once in X' and vice versa.
The node→schema-node mapping is surjective.

Text nodes have no name; their schema node's name is ``None`` and
their path step is rendered ``#text`` (attributes render ``@name``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import StorageError
from repro.xmlio.qname import QName

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.blocks import Block

_NODE_TYPES = ("document", "element", "attribute", "text")


class SchemaNode:
    """One node of the descriptive schema: a (name, type) pair plus the
    tree structure and the entry point to its block list (Section 9.2)."""

    __slots__ = ("name", "node_type", "parent", "children",
                 "first_block", "last_block", "descriptor_count")

    def __init__(self, name: Optional[QName], node_type: str,
                 parent: "SchemaNode | None") -> None:
        if node_type not in _NODE_TYPES:
            raise StorageError(f"unknown schema node type {node_type!r}")
        if node_type in ("element", "attribute") and name is None:
            raise StorageError(f"{node_type} schema nodes need a name")
        if node_type in ("document", "text") and name is not None:
            raise StorageError(f"{node_type} schema nodes are nameless")
        self.name = name
        self.node_type = node_type
        self.parent = parent
        self.children: list[SchemaNode] = []
        self.first_block: "Block | None" = None
        self.last_block: "Block | None" = None
        self.descriptor_count = 0

    # -- structure --------------------------------------------------------

    @property
    def step(self) -> str:
        """The path step this node contributes (``book``, ``@id``,
        ``#text``, ``#document``)."""
        if self.node_type == "document":
            return "#document"
        if self.node_type == "text":
            return "#text"
        prefix = "@" if self.node_type == "attribute" else ""
        return f"{prefix}{self.name.local}"

    @property
    def path(self) -> str:
        """Slash-separated root-to-here path (document step omitted)."""
        steps: list[str] = []
        node: SchemaNode | None = self
        while node is not None and node.node_type != "document":
            steps.append(node.step)
            node = node.parent
        steps.reverse()
        return "/".join(steps)

    def child_index(self, child: "SchemaNode") -> int:
        for index, candidate in enumerate(self.children):
            if candidate is child:
                return index
        raise StorageError(f"{child!r} is not a child of {self!r}")

    def find_child(self, name: Optional[QName],
                   node_type: str) -> "SchemaNode | None":
        for child in self.children:
            if child.node_type == node_type and child.name == name:
                return child
        return None

    def element_children(self) -> list["SchemaNode"]:
        return [c for c in self.children if c.node_type == "element"]

    def attribute_children(self) -> list["SchemaNode"]:
        return [c for c in self.children if c.node_type == "attribute"]

    # -- block chain -------------------------------------------------------

    def blocks(self) -> Iterator["Block"]:
        block = self.first_block
        while block is not None:
            yield block
            block = block.next_block

    def block_count(self) -> int:
        return sum(1 for _ in self.blocks())

    def __repr__(self) -> str:
        return f"SchemaNode({self.step!r}, {self.descriptor_count} nodes)"


class DescriptiveSchema:
    """The schema tree with get-or-create path extension.

    The schema carries a :attr:`version` counter that is bumped exactly
    when the tree *grows* (a new (name, type) path appears).  Pure data
    inserts reuse existing schema nodes and leave the version alone, so
    query plans compiled against the schema (`repro.query.planner`)
    stay valid across arbitrary data updates and invalidate precisely
    when a new document path — hence a new schema path, by the defining
    property of Section 9.1 — comes into existence.
    """

    def __init__(self) -> None:
        self.root = SchemaNode(None, "document", None)
        self._count = 1
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone growth counter: bumped only when a schema node is
        created, never on pure data inserts."""
        return self._version

    def get_or_add_child(self, parent: SchemaNode, name: Optional[QName],
                         node_type: str) -> SchemaNode:
        """The schema child for a (name, type) step, created on demand.

        Creation keeps the defining property: each document path has
        exactly one schema path.
        """
        existing = parent.find_child(name, node_type)
        if existing is not None:
            return existing
        child = SchemaNode(name, node_type, parent)
        parent.children.append(child)
        self._count += 1
        self._version += 1
        return child

    def node_count(self) -> int:
        return self._count

    def iter_nodes(self) -> Iterator[SchemaNode]:
        """Pre-order traversal of the schema tree."""
        def walk(node: SchemaNode) -> Iterator[SchemaNode]:
            yield node
            for child in node.children:
                yield from walk(child)
        return walk(self.root)

    def paths(self) -> list[tuple[str, str]]:
        """All (path, node type) pairs — the figure of Example 8."""
        return [(node.path, node.node_type)
                for node in self.iter_nodes()
                if node.node_type != "document"]

    def find_path(self, path: str) -> SchemaNode | None:
        """Look up a schema node by its slash path (as in :meth:`paths`)."""
        node = self.root
        if not path:
            return node
        for step in path.split("/"):
            found = None
            for child in node.children:
                if child.step == step:
                    found = child
                    break
            if found is None:
                return None
            node = found
        return node

    def __repr__(self) -> str:
        return f"DescriptiveSchema({self._count} schema nodes)"
