"""The Sedna interpretation of the :class:`~repro.xdm.store.NodeStore`
protocol: node references are :class:`NodeDescriptor` objects.

Every accessor is answered from descriptor + schema-node data alone —
the claim of Section 9.2 — by delegating to the
:class:`~repro.storage.engine.StorageEngine` accessor methods.  The
``type`` and ``typed-value`` accessors extend the same idea to the
typed model: a document path determines its schema path (§9.1) and a
document schema assigns types by path (§2/§6.2 item 4), so one type
annotation *per descriptive-schema node* — computed once by
:func:`schema_type_annotations` — types every instance descriptor,
with no per-node PSVI stored at all.  Without annotations the store
presents the untyped view (``xs:anyType`` elements,
``xdt:untypedAtomic`` leaves), which is exactly what an untyped state
algebra tree of the same document presents.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ModelError
from repro.xmlio.qname import QName
from repro.xsdtypes.base import AtomicValue, SimpleType, UNTYPED_ATOMIC
from repro.xsdtypes.sequence import Sequence
from repro.xdm.node import ANY_TYPE_NAME, UNTYPED_ATOMIC_NAME
from repro.xdm.store import NodeStore
from repro.schema.ast import (
    ComplexContentType,
    DocumentSchema,
    SimpleContentType,
    TypeName,
)
from repro.storage.descriptor import NodeDescriptor
from repro.storage.dschema import SchemaNode
from repro.storage.engine import StorageEngine


def doc_order_key(descriptor: NodeDescriptor) -> bytes:
    """The memoized packed document-order key (§9.3) of a descriptor —
    the one sort key of the whole storage-side query layer."""
    return descriptor.nid.sort_key()


class TypeAnnotation:
    """The §6.2 item-4 typing of one descriptive-schema node: the type
    accessor value plus the simple type (if any) driving typed-value."""

    __slots__ = ("type_name", "simple_type")

    def __init__(self, type_name: QName,
                 simple_type: "SimpleType | None" = None) -> None:
        self.type_name = type_name
        self.simple_type = simple_type

    def __repr__(self) -> str:
        return f"TypeAnnotation({self.type_name.lexical})"


def schema_type_annotations(engine: StorageEngine,
                            schema: DocumentSchema
                            ) -> dict[SchemaNode, TypeAnnotation]:
    """Type every descriptive-schema node from the document schema.

    Walks the descriptive schema (one node per document path, §9.1)
    alongside the schema's declarations (which assign types by path)
    and returns the annotation map the :class:`StorageNodeStore` uses
    to answer ``type`` and ``typed-value``.  Paths the schema does not
    declare stay unannotated and present the untyped view.
    """
    annotations: dict[SchemaNode, TypeAnnotation] = {}
    root_declaration = schema.root_element
    for schema_child in engine.schema.root.element_children():
        if (schema_child.name is not None
                and schema_child.name.local == root_declaration.name):
            _annotate_schema_node(schema_child, root_declaration.type,
                                  schema, annotations)
    return annotations


def _annotate_schema_node(node: SchemaNode, type_ref,
                          schema: DocumentSchema,
                          annotations: dict[SchemaNode, TypeAnnotation]
                          ) -> None:
    type_name = (type_ref.qname if isinstance(type_ref, TypeName)
                 else ANY_TYPE_NAME)
    resolved = schema.resolve(type_ref)
    simple: SimpleType | None = None
    if isinstance(resolved, SimpleType):
        simple = resolved
    elif isinstance(resolved, SimpleContentType):
        base = schema.resolve(resolved.base)
        if isinstance(base, SimpleType):
            simple = base
    annotations[node] = TypeAnnotation(type_name, simple)
    if isinstance(resolved, (SimpleContentType, ComplexContentType)):
        declared_attributes = dict(resolved.attributes.items)
        for attr_node in node.attribute_children():
            local = attr_node.name.local if attr_node.name else None
            attr_ref = declared_attributes.get(local)
            if attr_ref is None:
                continue
            attr_type = (attr_ref.qname
                         if isinstance(attr_ref, TypeName)
                         else ANY_TYPE_NAME)
            attr_simple = schema.resolve(attr_ref)
            annotations[attr_node] = TypeAnnotation(
                attr_type,
                attr_simple if isinstance(attr_simple, SimpleType)
                else None)
    if not isinstance(resolved, ComplexContentType) or \
            resolved.group is None:
        return
    declarations = {eld.name: eld
                    for eld in resolved.group.element_declarations()}
    for child in node.element_children():
        local = child.name.local if child.name else None
        declaration = declarations.get(local)
        if declaration is not None:
            _annotate_schema_node(child, declaration.type, schema,
                                  annotations)


class StorageNodeStore(NodeStore):
    """Refs are node descriptors; accessors read descriptor + schema
    node (+ the shared per-schema-node type annotations, when given).
    """

    def __init__(self, engine: StorageEngine,
                 annotations: "dict[SchemaNode, TypeAnnotation] | None"
                 = None,
                 document_uri: str | None = None) -> None:
        self._engine = engine
        self._annotations = annotations or {}
        self._document_uri = document_uri

    @property
    def engine(self) -> StorageEngine:
        return self._engine

    @classmethod
    def typed(cls, engine: StorageEngine, schema: DocumentSchema,
              document_uri: str | None = None) -> "StorageNodeStore":
        """A store presenting the typed (§6.2) accessor view."""
        return cls(engine, schema_type_annotations(engine, schema),
                   document_uri=document_uri)

    def _annotation_of(self, ref: NodeDescriptor
                       ) -> "TypeAnnotation | None":
        return self._annotations.get(ref.schema_node)

    # -- the ten accessors ---------------------------------------------

    def node_kind(self, ref: NodeDescriptor) -> str:
        return ref.node_type

    def node_name(self, ref: NodeDescriptor) -> Optional[QName]:
        return ref.schema_node.name

    def parent(self, ref: NodeDescriptor) -> Optional[NodeDescriptor]:
        return ref.parent

    def string_value(self, ref: NodeDescriptor) -> str:
        return self._engine.string_value(ref)

    def typed_value(self, ref: NodeDescriptor) -> Sequence[AtomicValue]:
        kind = ref.node_type
        if kind in ("text", "document"):
            return Sequence.of(
                AtomicValue(self.string_value(ref), UNTYPED_ATOMIC))
        annotation = self._annotation_of(ref)
        if annotation is not None and annotation.simple_type is not None:
            return Sequence(
                annotation.simple_type.typed_value(self.string_value(ref)))
        if kind == "element" and annotation is not None \
                and annotation.type_name != ANY_TYPE_NAME \
                and any(child.node_type == "element"
                        for child in self.children(ref)):
            raise ModelError(
                f"element {self.local_name(ref)} has element-only "
                "content; its typed value is undefined")
        return Sequence.of(
            AtomicValue(self.string_value(ref), UNTYPED_ATOMIC))

    def type_name(self, ref: NodeDescriptor) -> Optional[QName]:
        kind = ref.node_type
        if kind == "document":
            return None
        if kind == "text":
            return UNTYPED_ATOMIC_NAME
        annotation = self._annotation_of(ref)
        if annotation is not None:
            return annotation.type_name
        return (ANY_TYPE_NAME if kind == "element"
                else UNTYPED_ATOMIC_NAME)

    def children(self, ref: NodeDescriptor) -> list[NodeDescriptor]:
        return self._engine.children(ref)

    def attributes(self, ref: NodeDescriptor) -> list[NodeDescriptor]:
        return self._engine.attributes(ref)

    def base_uri(self, ref: NodeDescriptor) -> Optional[str]:
        # §6.2: base-uri is inherited from the document downward, and
        # the engine stores one document — so one URI covers all nodes.
        return self._document_uri

    def nilled(self, ref: NodeDescriptor) -> Optional[bool]:
        # The physical store holds no xsi:nil PSVI; elements present
        # the un-nilled value, other kinds the empty sequence.
        return False if ref.node_type == "element" else None

    # -- navigation kernel ---------------------------------------------

    def root(self) -> NodeDescriptor:
        document = self._engine.document
        if document is None:
            raise ModelError("storage engine holds no document")
        return document

    def iter_document_order(self, ref: "NodeDescriptor | None" = None
                            ) -> Iterator[NodeDescriptor]:
        yield from self._engine.iter_document_order(
            ref if ref is not None else self.root())

    def descendants_of(self, ref: NodeDescriptor
                       ) -> "list[NodeDescriptor]":
        """Batched ``descendant-or-self``: descriptors are gathered one
        *block* at a time from the schema subtree's block lists and
        document order is restored by one sort on the packed label
        keys, instead of per-node generator hops down the tree.

        From the document root the prefix filter accepts everything, so
        the sweep touches every block exactly once; below the root only
        subtrees big enough to amortize the block sweep win, so small
        contexts keep the recursive walk.
        """
        engine = self._engine
        if ref is engine.document:
            out: list[NodeDescriptor] = []
            for schema_node in engine.schema.iter_nodes():
                block = schema_node.first_block
                while block is not None:
                    block.extend_in_order(out)
                    block = block.next_block
            out.sort(key=doc_order_key)
            return out
        return list(engine.iter_document_order(ref))

    def before(self, first: NodeDescriptor,
               second: NodeDescriptor) -> bool:
        return first.nid.sort_key() < second.nid.sort_key()

    def node_key(self, ref: NodeDescriptor) -> bytes:
        # The packed label key: memoized per label, so repeated dedup
        # hashing re-uses both the bytes object and its cached hash.
        return ref.nid.sort_key()

    def owns_ref(self, obj: object) -> bool:
        return isinstance(obj, NodeDescriptor)
