"""Explicit transactions over the storage engine.

The manager attaches to a :class:`StorageEngine` and turns its three
mutations into logged, atomic units:

* every mutation appends a logical WAL record **before** the in-memory
  structures change (the write-ahead rule);
* a transaction groups records between BEGIN and COMMIT — recovery
  replays exactly the committed groups;
* rollback undoes the in-memory effects via inverse operations
  (inserted descriptors are unlinked, replaced attribute values are
  restored, deleted subtrees are rebuilt label-exactly) and writes an
  ABORT marker;
* in *strict* mode a commit first re-verifies the §9 block and label
  invariants (``check_invariants``) and rolls back instead of
  committing a corrupt state.

Mutations outside an explicit transaction autocommit: the engine wraps
each one in a single-operation BEGIN/COMMIT, so an attached engine is
always durable.

A simulated :class:`~repro.storage.faults.CrashError` is *not* rolled
back — the process model is dead, its memory is gone, and recovery
from the files is the only way back.  That is exactly what the
crash-matrix tests assert.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro import obs
from repro.errors import StorageError, UpdateError
from repro.storage.faults import CrashError
from repro.storage.wal import WriteAheadLog
from repro.xmlio.qname import QName

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.descriptor import NodeDescriptor
    from repro.storage.engine import StorageEngine
    from repro.storage.labels import NidLabel


class Transaction:
    """One open unit of work: an id, a state and an undo list."""

    __slots__ = ("txn_id", "state", "undo")

    def __init__(self, txn_id: int) -> None:
        self.txn_id = txn_id
        self.state = "open"
        self.undo: list[tuple] = []

    def __repr__(self) -> str:
        return (f"Transaction(#{self.txn_id}, {self.state}, "
                f"{len(self.undo)} undo entries)")


class TransactionManager:
    """Write-ahead logging and atomicity for one engine."""

    def __init__(self, engine: "StorageEngine", wal: WriteAheadLog,
                 strict: bool = False) -> None:
        if engine.txn_manager is not None:
            raise StorageError("engine already has a transaction manager")
        self.engine = engine
        self.wal = wal
        self.strict = strict
        self.active: Optional[Transaction] = None
        self._next_txn = 1
        self._undoing = False
        engine.txn_manager = self

    def detach(self) -> None:
        """Release the engine (mutations stop being logged)."""
        self.engine.txn_manager = None

    # -- state tests used by the engine hooks ---------------------------

    @property
    def logging(self) -> bool:
        """True when mutations must produce WAL records + undo entries."""
        return self.active is not None and not self._undoing

    def autocommit_needed(self) -> bool:
        return self.active is None and not self._undoing

    def claim_txn_id(self) -> int:
        """Reserve a fresh transaction id without opening a
        transaction (used by the bulk-load LOAD marker)."""
        txn_id = self._next_txn
        self._next_txn += 1
        return txn_id

    # -- the transaction protocol ---------------------------------------

    def begin(self) -> Transaction:
        if self.active is not None:
            raise UpdateError(
                "a transaction is already open (no nesting)")
        txn = Transaction(self._next_txn)
        self._next_txn += 1
        self.wal.append_begin(txn.txn_id)
        self.active = txn
        return txn

    def _require_open(self) -> Transaction:
        if self.active is None:
            raise UpdateError("no open transaction")
        return self.active

    def commit(self) -> None:
        """Seal the open transaction (write-ahead COMMIT record).

        Strict mode re-verifies the engine invariants first and turns
        a violation into a rollback + re-raise: a corrupt state is
        never durably committed.
        """
        txn = self._require_open()
        recording = obs.RECORDING
        started = time.perf_counter_ns() if recording else 0
        if self.strict:
            try:
                self.engine.check_invariants()
            except StorageError:
                self.rollback()
                raise
        self.wal.append_commit(txn.txn_id)
        txn.state = "committed"
        self.active = None
        if recording:
            obs.REGISTRY.counter("txn.commits").inc()
            obs.REGISTRY.histogram("txn.commit.ns").observe(
                time.perf_counter_ns() - started)

    def rollback(self) -> None:
        """Undo the open transaction's in-memory effects, mark ABORT."""
        txn = self._require_open()
        recording = obs.RECORDING
        started = time.perf_counter_ns() if recording else 0
        self._undoing = True
        try:
            for entry in reversed(txn.undo):
                self._undo_entry(entry)
        finally:
            self._undoing = False
        self.wal.append_abort(txn.txn_id)
        txn.state = "aborted"
        self.active = None
        if recording:
            obs.REGISTRY.counter("txn.rollbacks").inc()
            obs.REGISTRY.histogram("txn.rollback.ns").observe(
                time.perf_counter_ns() - started)

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """``with manager.transaction(): ...`` — commit on success,
        rollback on error, hands-off on a simulated crash."""
        txn = self.begin()
        try:
            yield txn
        except CrashError:
            # The process model died: memory is forfeit, nothing more
            # may be written.  Recovery discards the unfinished group.
            raise
        except BaseException:
            if self.active is txn:
                self.rollback()
            raise
        if self.active is txn:
            self.commit()

    # -- engine hooks (write-ahead logging + undo capture) --------------

    def log_insert(self, parent: "NodeDescriptor", index: int,
                   name: Optional[QName], text: Optional[str],
                   nid: "NidLabel") -> None:
        txn = self._require_open()
        if name is not None:
            self.wal.append_insert_element(txn.txn_id, parent.nid, index,
                                           name, nid)
        else:
            self.wal.append_insert_text(txn.txn_id, parent.nid, index,
                                        text or "", nid)

    def applied_insert(self, descriptor: "NodeDescriptor") -> None:
        self._require_open().undo.append(("insert", descriptor))

    def log_set_attribute(self, parent: "NodeDescriptor", name: QName,
                          value: str, nid: "NidLabel",
                          replace: bool) -> None:
        txn = self._require_open()
        self.wal.append_set_attribute(txn.txn_id, parent.nid, name,
                                      value, nid, replace)

    def applied_set_attribute(self, descriptor: "NodeDescriptor",
                              old_value: Optional[str],
                              created: bool) -> None:
        txn = self._require_open()
        if created:
            txn.undo.append(("insert", descriptor))
        else:
            txn.undo.append(("value", descriptor, old_value))

    def log_create_index(self, definition) -> None:
        txn = self._require_open()
        self.wal.append_create_index(txn.txn_id, definition.path,
                                     definition.kind,
                                     definition.value_type)

    def applied_create_index(self, definition) -> None:
        self._require_open().undo.append(("create_index", definition))

    def log_drop_index(self, definition) -> None:
        txn = self._require_open()
        self.wal.append_drop_index(txn.txn_id, definition.path,
                                   definition.kind)

    def applied_drop_index(self, definition) -> None:
        self._require_open().undo.append(("drop_index", definition))

    def log_delete(self, descriptor: "NodeDescriptor") -> None:
        """WAL record plus a label-exact snapshot for the inverse op.

        The snapshot is taken *before* the subtree is dismantled; each
        entry carries the schema node, the nid, the value and a parent
        key (a live descriptor for the subtree root, an earlier
        entry's nid symbols below it), in document order so parents
        restore before their children.
        """
        txn = self._require_open()
        self.wal.append_delete(txn.txn_id, descriptor.nid)
        entries: list[tuple] = []
        for node in self.engine.iter_document_order(descriptor):
            if node is descriptor:
                parent_key: object = node.parent
            else:
                parent_key = node.parent.nid.symbols()  # type: ignore
            entries.append((node.schema_node, node.nid, node.value,
                            parent_key))
        txn.undo.append(("delete", entries))

    # -- inverse operations ---------------------------------------------

    def _undo_entry(self, entry: tuple) -> None:
        kind = entry[0]
        if kind == "insert":
            self.engine._undo_insert(entry[1])
        elif kind == "value":
            self.engine._undo_set_value(entry[1], entry[2])
        elif kind == "delete":
            self.engine._restore_subtree(entry[1])
        elif kind == "create_index":
            self.engine.indexes.uninstall(entry[1])
        elif kind == "drop_index":
            self.engine.indexes.install(entry[1])
        else:  # pragma: no cover - defensive
            raise StorageError(f"unknown undo entry {kind!r}")

    def __repr__(self) -> str:
        state = repr(self.active) if self.active else "idle"
        return f"TransactionManager({state}, strict={self.strict})"
