"""Data blocks — the storage unit of Section 9.2.

Every schema node owns a bidirectional list of fixed-capacity blocks.
The invariant the paper states: descriptors are **partially ordered**
across blocks (everything in block *i* precedes everything in block
*j* for *i* < *j* in the list) while descriptors *within* one block are
unordered in memory — document order inside a block is reconstructed
through the 2-byte ``next_in_block``/``prev_in_block`` short pointers.
This split "has been made to simplify updates": an insertion only
touches one block (or splits it), never shifts neighbours.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro import obs
from repro.errors import StorageError
from repro.storage.descriptor import NO_SLOT, NodeDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.dschema import SchemaNode

#: Modelled block header size in bytes (schema-node pointer + chain
#: pointers + the in-order chain anchors + the occupancy map).
BLOCK_HEADER_BYTES = 8 * 4 + 8


class Block:
    """One fixed-capacity block of node descriptors."""

    __slots__ = ("schema_node", "capacity", "slots", "count",
                 "next_block", "prev_block", "first_slot", "last_slot",
                 "block_id", "_ordered")

    _next_id = 0

    def __init__(self, schema_node: "SchemaNode", capacity: int) -> None:
        if capacity < 2:
            raise StorageError("block capacity must be at least 2")
        self.schema_node = schema_node
        self.capacity = capacity
        self.slots: list[Optional[NodeDescriptor]] = [None] * capacity
        self.count = 0
        self.next_block: Optional[Block] = None
        self.prev_block: Optional[Block] = None
        # Anchors of the in-block document-order chain (slot numbers).
        self.first_slot: int = NO_SLOT
        self.last_slot: int = NO_SLOT
        # Materialized document-order run of this block, rebuilt lazily
        # by extend_in_order after any structural change; None = dirty.
        self._ordered: Optional[list] = None
        self.block_id = Block._next_id
        Block._next_id += 1
        if obs.RECORDING:
            obs.REGISTRY.counter("storage.blocks.allocated").inc()

    # -- basic bookkeeping ---------------------------------------------------

    @property
    def is_full(self) -> bool:
        return self.count >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def _free_slot(self) -> int:
        for index, slot in enumerate(self.slots):
            if slot is None:
                return index
        raise StorageError("no free slot in a non-full block")

    # -- the in-block document-order chain ---------------------------------

    def iter_in_order(self) -> Iterator[NodeDescriptor]:
        """Descriptors of this block in document order (short-pointer
        chain), regardless of their physical slot positions."""
        slot = self.first_slot
        while slot != NO_SLOT:
            descriptor = self.slots[slot]
            if descriptor is None:  # pragma: no cover - invariant
                raise StorageError("order chain references a free slot")
            yield descriptor
            slot = descriptor.next_in_block

    def extend_in_order(self, out: list) -> None:
        """Append this block's descriptors to *out* in document order.

        The batched counterpart of :meth:`iter_in_order`: one call per
        block instead of one generator resumption per descriptor, which
        is what the compiled query executors and the batched NodeStore
        kernel iterate with.  The chain walk is performed once after a
        structural change and memoized, so steady-state sweeps are a
        single ``list.extend`` per block.
        """
        ordered = self._ordered
        if ordered is None:
            slots = self.slots
            slot = self.first_slot
            ordered = []
            append = ordered.append
            while slot != NO_SLOT:
                descriptor = slots[slot]
                if descriptor is None:  # pragma: no cover - invariant
                    raise StorageError(
                        "order chain references a free slot")
                append(descriptor)
                slot = descriptor.next_in_block
            self._ordered = ordered
        out.extend(ordered)

    def first_descriptor(self) -> Optional[NodeDescriptor]:
        if self.first_slot == NO_SLOT:
            return None
        return self.slots[self.first_slot]

    def last_descriptor(self) -> Optional[NodeDescriptor]:
        if self.last_slot == NO_SLOT:
            return None
        return self.slots[self.last_slot]

    # -- insertion and removal ---------------------------------------------

    def insert_after(self, descriptor: NodeDescriptor,
                     predecessor: Optional[NodeDescriptor]) -> None:
        """Place *descriptor* into any free slot, linked into the order
        chain right after *predecessor* (None = at the front)."""
        if self.is_full:
            raise StorageError("insert into a full block")
        if predecessor is not None and predecessor.block is not self:
            raise StorageError("predecessor lives in a different block")
        self._ordered = None
        slot = self._free_slot()
        self.slots[slot] = descriptor
        descriptor.block = self
        descriptor.slot = slot
        self.count += 1
        if predecessor is None:
            descriptor.prev_in_block = NO_SLOT
            descriptor.next_in_block = self.first_slot
            if self.first_slot != NO_SLOT:
                self.slots[self.first_slot].prev_in_block = slot
            self.first_slot = slot
            if self.last_slot == NO_SLOT:
                self.last_slot = slot
        else:
            descriptor.prev_in_block = predecessor.slot
            descriptor.next_in_block = predecessor.next_in_block
            if predecessor.next_in_block != NO_SLOT:
                self.slots[predecessor.next_in_block].prev_in_block = slot
            predecessor.next_in_block = slot
            if self.last_slot == predecessor.slot:
                self.last_slot = slot

    def remove(self, descriptor: NodeDescriptor) -> None:
        """Unlink *descriptor* from the chain and free its slot."""
        if descriptor.block is not self:
            raise StorageError("descriptor lives in a different block")
        self._ordered = None
        prev_slot = descriptor.prev_in_block
        next_slot = descriptor.next_in_block
        if prev_slot != NO_SLOT:
            self.slots[prev_slot].next_in_block = next_slot
        else:
            self.first_slot = next_slot
        if next_slot != NO_SLOT:
            self.slots[next_slot].prev_in_block = prev_slot
        else:
            self.last_slot = prev_slot
        self.slots[descriptor.slot] = None
        descriptor.block = None
        descriptor.slot = NO_SLOT
        descriptor.next_in_block = NO_SLOT
        descriptor.prev_in_block = NO_SLOT
        self.count -= 1

    def split(self) -> "Block":
        """Move the upper half of the order chain into a new block
        linked right after this one; returns the new block."""
        ordered = list(self.iter_in_order())
        keep = ordered[:len(ordered) // 2]
        move = ordered[len(ordered) // 2:]
        sibling = Block(self.schema_node, self.capacity)
        # Rebuild this block with the kept half.
        for descriptor in ordered:
            self.slots[descriptor.slot] = None
        self.count = 0
        self.first_slot = NO_SLOT
        self.last_slot = NO_SLOT
        self._ordered = None
        previous: Optional[NodeDescriptor] = None
        for descriptor in keep:
            descriptor.block = None
            self.insert_after(descriptor, previous)
            previous = descriptor
        previous = None
        for descriptor in move:
            descriptor.block = None
            sibling.insert_after(descriptor, previous)
            previous = descriptor
        # Link the sibling into the chain.
        sibling.next_block = self.next_block
        sibling.prev_block = self
        if self.next_block is not None:
            self.next_block.prev_block = sibling
        self.next_block = sibling
        if self.schema_node.last_block is self:
            self.schema_node.last_block = sibling
        return sibling

    def size_bytes(self) -> int:
        """Modelled block footprint: header + descriptor payloads."""
        payload = sum(d.size_bytes() for d in self.slots if d is not None)
        return BLOCK_HEADER_BYTES + payload

    def __repr__(self) -> str:
        return (f"Block#{self.block_id}({self.schema_node.step!r}, "
                f"{self.count}/{self.capacity})")
