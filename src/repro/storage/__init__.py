"""The Sedna physical representation of Section 9.

Descriptive schema (9.1), data blocks and node descriptors (9.2), and
the numbering scheme (9.3), assembled by :class:`StorageEngine`.
"""

from repro.storage.blocks import BLOCK_HEADER_BYTES, Block
from repro.storage.descriptor import (
    NO_SLOT,
    POINTER_BYTES,
    SHORT_POINTER_BYTES,
    NodeDescriptor,
)
from repro.storage.dschema import DescriptiveSchema, SchemaNode
from repro.storage.engine import StorageEngine
from repro.storage.persist import dump_engine, dumps_engine, load_engine
from repro.storage.store import (
    StorageNodeStore,
    TypeAnnotation,
    schema_type_annotations,
)
from repro.storage.labels import (
    NidLabel,
    NumberingScheme,
    before,
    compare,
    equal,
    is_ancestor,
    is_parent,
    label_length_stats,
)

__all__ = [
    "BLOCK_HEADER_BYTES",
    "Block",
    "DescriptiveSchema",
    "NO_SLOT",
    "NidLabel",
    "NodeDescriptor",
    "NumberingScheme",
    "POINTER_BYTES",
    "SHORT_POINTER_BYTES",
    "SchemaNode",
    "StorageEngine",
    "StorageNodeStore",
    "TypeAnnotation",
    "schema_type_annotations",
    "dump_engine",
    "dumps_engine",
    "load_engine",
    "before",
    "compare",
    "equal",
    "is_ancestor",
    "is_parent",
    "label_length_stats",
]
