"""The Sedna physical representation of Section 9.

Descriptive schema (9.1), data blocks and node descriptors (9.2), and
the numbering scheme (9.3), assembled by :class:`StorageEngine` — plus
the durability layer that pairs with it: write-ahead log, transactions,
atomic checkpoints/recovery, and the fault-injection harness that
exercises them.
"""

from repro.storage.backends import (
    BACKENDS,
    DEFAULT_MAX_SNAPSHOTS,
    FileBackend,
    MemoryBackend,
    SnapshotInfo,
    SqliteBackend,
    StorageBackend,
    schema_fingerprint,
    snapshot_version,
)
from repro.storage.blocks import BLOCK_HEADER_BYTES, Block
from repro.storage.checkpoints import CheckpointTracker
from repro.storage.descriptor import (
    NO_SLOT,
    POINTER_BYTES,
    SHORT_POINTER_BYTES,
    NodeDescriptor,
)
from repro.storage.dschema import DescriptiveSchema, SchemaNode
from repro.storage.engine import StorageEngine
from repro.storage.faults import (
    CRASH_POINTS,
    SESSION_CRASH_POINTS,
    CrashError,
    FaultPlan,
)
from repro.storage.indexes import (
    IndexDefinition,
    IndexManager,
    PathIndex,
    ValueIndex,
)
from repro.storage.persist import dump_engine, dumps_engine, load_engine
from repro.storage.recovery import (
    RecoveryError,
    RecoveryResult,
    bulk_load,
    checkpoint,
    recover,
)
from repro.storage.txn import Transaction, TransactionManager
from repro.storage.wal import (
    FileWalStore,
    MemoryWalStore,
    WalRecord,
    WalScan,
    WalStore,
    WriteAheadLog,
    read_wal,
    read_wal_store,
    scan_wal,
)
from repro.storage.store import (
    StorageNodeStore,
    TypeAnnotation,
    schema_type_annotations,
)
from repro.storage.labels import (
    NidLabel,
    NumberingScheme,
    before,
    compare,
    equal,
    is_ancestor,
    is_parent,
    label_length_stats,
)

__all__ = [
    "BACKENDS",
    "BLOCK_HEADER_BYTES",
    "Block",
    "CRASH_POINTS",
    "SESSION_CRASH_POINTS",
    "CheckpointTracker",
    "CrashError",
    "DEFAULT_MAX_SNAPSHOTS",
    "DescriptiveSchema",
    "FaultPlan",
    "FileBackend",
    "FileWalStore",
    "MemoryBackend",
    "MemoryWalStore",
    "IndexDefinition",
    "IndexManager",
    "PathIndex",
    "ValueIndex",
    "NO_SLOT",
    "NidLabel",
    "NodeDescriptor",
    "NumberingScheme",
    "POINTER_BYTES",
    "SHORT_POINTER_BYTES",
    "RecoveryError",
    "RecoveryResult",
    "SchemaNode",
    "SnapshotInfo",
    "SqliteBackend",
    "StorageBackend",
    "StorageEngine",
    "StorageNodeStore",
    "Transaction",
    "TransactionManager",
    "TypeAnnotation",
    "WalRecord",
    "WalScan",
    "WalStore",
    "WriteAheadLog",
    "schema_fingerprint",
    "schema_type_annotations",
    "snapshot_version",
    "bulk_load",
    "checkpoint",
    "dump_engine",
    "dumps_engine",
    "load_engine",
    "read_wal",
    "read_wal_store",
    "recover",
    "scan_wal",
    "before",
    "compare",
    "equal",
    "is_ancestor",
    "is_parent",
    "label_length_stats",
]
