"""The public content-model matching facade.

``ContentModel`` wraps a group definition and answers whether a
sequence of child-element names is permitted.  Internally it uses the
derivative matcher (counter-based, no expansion); the Glushkov
automaton is available for cross-checking and the UPA diagnostic.
"""

from __future__ import annotations

from typing import Iterable

from repro.content.derivatives import DerivativeMatcher
from repro.content.glushkov import GlushkovAutomaton
from repro.content.particles import Particle, compile_group
from repro.schema.ast import ElementDeclaration, GroupDefinition


class ContentModel:
    """Compiled content model of one complex type's group."""

    def __init__(self, group: GroupDefinition) -> None:
        self.group = group
        self.particle: Particle = compile_group(group)
        self._matcher = DerivativeMatcher(self.particle)
        self._declarations: dict[str, ElementDeclaration] = {
            eld.name: eld for eld in group.element_declarations()}
        self._automaton: GlushkovAutomaton | None = None

    # -- matching ----------------------------------------------------------

    def matches(self, names: Iterable[str]) -> bool:
        """True iff the child-name sequence satisfies the model."""
        return self._matcher.matches(names)

    def explain(self, names: list[str]) -> str:
        """Human-readable reason a sequence is (not) accepted."""
        return self._matcher.explain_failure(names)

    def declaration_for(self, name: str) -> ElementDeclaration:
        """The element declaration a child with *name* is attributed to."""
        return self._declarations[name]

    def knows(self, name: str) -> bool:
        return name in self._declarations

    # -- diagnostics --------------------------------------------------------

    def automaton(self) -> GlushkovAutomaton:
        """The (lazily built) Glushkov automaton of the model."""
        if self._automaton is None:
            self._automaton = GlushkovAutomaton(self.particle)
        return self._automaton

    def is_deterministic(self) -> bool:
        """The Unique Particle Attribution check."""
        return self.automaton().is_deterministic()

    def __repr__(self) -> str:
        return f"ContentModel({self.particle!r})"
