"""Brzozowski-derivative matcher for content models.

The derivative of a particle with respect to an element name is the
particle matching the remainder of the word.  Bounded repetition is
handled with counters (no expansion), so ``maxOccurs="1000000"`` costs
nothing.  This is the primary matcher used by validation and the
Section 6.2 conformance checker; the Glushkov matcher cross-checks it
in the test suite.
"""

from __future__ import annotations

from typing import Iterable

from repro.content.particles import (
    AllParticle,
    ChoiceParticle,
    EmptyParticle,
    NameParticle,
    Particle,
    RepeatParticle,
    SequenceParticle,
)

#: A particle matching nothing at all (the failure sink).
_FAIL = ChoiceParticle(())

_EMPTY = EmptyParticle()


def _is_fail(particle: Particle) -> bool:
    return isinstance(particle, ChoiceParticle) and not particle.children


def _sequence(parts: Iterable[Particle]) -> Particle:
    flat: list[Particle] = []
    for part in parts:
        if _is_fail(part):
            return _FAIL
        if isinstance(part, EmptyParticle):
            continue
        if isinstance(part, SequenceParticle):
            flat.extend(part.children)
        else:
            flat.append(part)
    if not flat:
        return _EMPTY
    if len(flat) == 1:
        return flat[0]
    return SequenceParticle(tuple(flat))


def _choice(parts: Iterable[Particle]) -> Particle:
    flat: list[Particle] = []
    seen: set[Particle] = set()
    for part in parts:
        if _is_fail(part):
            continue
        candidates = (part.children
                      if isinstance(part, ChoiceParticle) else (part,))
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                flat.append(candidate)
    if not flat:
        return _FAIL
    if len(flat) == 1:
        return flat[0]
    return ChoiceParticle(tuple(flat))


def derive(particle: Particle, name: str) -> Particle:
    """The Brzozowski derivative of *particle* with respect to *name*."""
    if isinstance(particle, EmptyParticle):
        return _FAIL
    if isinstance(particle, NameParticle):
        return _EMPTY if particle.name == name else _FAIL
    if isinstance(particle, ChoiceParticle):
        return _choice(derive(child, name) for child in particle.children)
    if isinstance(particle, SequenceParticle):
        # d(AB) = d(A)B | [A nullable] d(B)
        alternatives: list[Particle] = []
        children = particle.children
        for index, child in enumerate(children):
            alternatives.append(
                _sequence([derive(child, name), *children[index + 1:]]))
            if not child.nullable():
                break
        return _choice(alternatives)
    if isinstance(particle, AllParticle):
        # Consuming one interleaved item removes it from the set.
        remaining = tuple(item for item in particle.items
                          if item[0] != name)
        if len(remaining) == len(particle.items):
            return _FAIL
        if not remaining:
            return _EMPTY
        return AllParticle(remaining)
    if isinstance(particle, RepeatParticle):
        # d(R{m,n}) = d(R) . R{max(m-1,0), n-1}
        inner = derive(particle.child, name)
        if _is_fail(inner):
            return _FAIL
        new_min = max(particle.minimum - 1, 0)
        new_max = None if particle.maximum is None else particle.maximum - 1
        if new_max == 0:
            rest: Particle = _EMPTY
        elif new_max is None and new_min == 0 and isinstance(
                particle.child, NameParticle):
            rest = RepeatParticle(particle.child, 0, None)
        else:
            rest = RepeatParticle(particle.child, new_min, new_max)
        return _sequence([inner, rest])
    raise TypeError(f"unknown particle {particle!r}")


class DerivativeMatcher:
    """Matches sequences of child-element names against a particle."""

    def __init__(self, particle: Particle) -> None:
        self._particle = particle
        self._alphabet = frozenset(particle.names())

    @property
    def alphabet(self) -> frozenset[str]:
        return self._alphabet

    def matches(self, names: Iterable[str]) -> bool:
        """True iff the whole name sequence is accepted."""
        state = self._particle
        for name in names:
            if name not in self._alphabet:
                return False
            state = derive(state, name)
            if _is_fail(state):
                return False
        return state.nullable()

    def residual(self, names: Iterable[str]) -> Particle:
        """The particle left after consuming *names* (may be the sink)."""
        state = self._particle
        for name in names:
            state = derive(state, name)
        return state

    def explain_failure(self, names: list[str]) -> str:
        """A human-readable account of why the sequence is rejected."""
        state = self._particle
        for position, name in enumerate(names):
            if name not in self._alphabet:
                return (f"element {name!r} at position {position + 1} does "
                        "not occur in the content model")
            next_state = derive(state, name)
            if _is_fail(next_state):
                return (f"element {name!r} at position {position + 1} is "
                        f"not allowed here (expected one of "
                        f"{sorted(_first_names(state))})")
            state = next_state
        if not state.nullable():
            return ("content ended prematurely; expected one of "
                    f"{sorted(_first_names(state))}")
        return "the sequence matches"


def _first_names(particle: Particle) -> set[str]:
    """The set of names that can begin a word of *particle*."""
    if isinstance(particle, NameParticle):
        return {particle.name}
    if isinstance(particle, EmptyParticle):
        return set()
    if isinstance(particle, ChoiceParticle):
        out: set[str] = set()
        for child in particle.children:
            out |= _first_names(child)
        return out
    if isinstance(particle, SequenceParticle):
        out = set()
        for child in particle.children:
            out |= _first_names(child)
            if not child.nullable():
                break
        return out
    if isinstance(particle, RepeatParticle):
        return _first_names(particle.child)
    if isinstance(particle, AllParticle):
        return {name for name, _required in particle.items}
    raise TypeError(f"unknown particle {particle!r}")
