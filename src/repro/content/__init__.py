"""Content-model matching for complex types (Section 6.2, item 5.4.2.3).

Two independent engines — Brzozowski derivatives with counters and a
Glushkov position automaton — matched against each other by the test
suite.  :class:`ContentModel` is the facade the validator and the
conformance checker use.
"""

from repro.content.derivatives import DerivativeMatcher, derive
from repro.content.glushkov import GlushkovAutomaton
from repro.content.matcher import ContentModel
from repro.content.particles import (
    AllParticle,
    ChoiceParticle,
    EmptyParticle,
    NameParticle,
    Particle,
    RepeatParticle,
    SequenceParticle,
    compile_group,
    expand_particle,
)

__all__ = [
    "AllParticle",
    "ChoiceParticle",
    "ContentModel",
    "DerivativeMatcher",
    "EmptyParticle",
    "GlushkovAutomaton",
    "NameParticle",
    "Particle",
    "RepeatParticle",
    "SequenceParticle",
    "compile_group",
    "derive",
    "expand_particle",
]
