"""Particle trees: the normal form of content models.

A :class:`~repro.schema.ast.GroupDefinition` is compiled into a small
regular-expression-like tree over element names:

* :class:`NameParticle` — one element name (a leaf),
* :class:`SequenceParticle` — ordered concatenation,
* :class:`ChoiceParticle` — alternation,
* :class:`RepeatParticle` — bounded or unbounded repetition
  (minOccurs/maxOccurs),
* :class:`EmptyParticle` — the empty content model (matches only the
  empty word).

The two matchers in :mod:`repro.content.derivatives` and
:mod:`repro.content.glushkov` both work on this normal form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ContentModelError
from repro.schema.ast import (
    AllGroup,
    CombinationFactor,
    ElementDeclaration,
    GroupDefinition,
    RepetitionFactor,
)


class Particle:
    """Base class of the particle tree."""

    def nullable(self) -> bool:
        """True iff this particle matches the empty word."""
        raise NotImplementedError

    def names(self) -> Iterator[str]:
        """All element names occurring in the particle."""
        raise NotImplementedError


@dataclass(frozen=True)
class EmptyParticle(Particle):
    """Matches exactly the empty word (the paper's *empty content*)."""

    def nullable(self) -> bool:
        return True

    def names(self) -> Iterator[str]:
        return iter(())

    def __repr__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class NameParticle(Particle):
    """Matches a single child element with the given name."""

    name: str

    def nullable(self) -> bool:
        return False

    def names(self) -> Iterator[str]:
        yield self.name

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SequenceParticle(Particle):
    children: tuple[Particle, ...]

    def nullable(self) -> bool:
        return all(child.nullable() for child in self.children)

    def names(self) -> Iterator[str]:
        for child in self.children:
            yield from child.names()

    def __repr__(self) -> str:
        return "(" + ", ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class ChoiceParticle(Particle):
    children: tuple[Particle, ...]

    def nullable(self) -> bool:
        return any(child.nullable() for child in self.children)

    def names(self) -> Iterator[str]:
        for child in self.children:
            yield from child.names()

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(c) for c in self.children) + ")"


@dataclass(frozen=True)
class AllParticle(Particle):
    """Interleave: each named item once (or optionally), any order."""

    items: tuple[tuple[str, bool], ...]  # (name, required)

    def nullable(self) -> bool:
        return not any(required for _name, required in self.items)

    def names(self) -> Iterator[str]:
        for name, _required in self.items:
            yield name

    def __repr__(self) -> str:
        body = " & ".join(name if required else f"{name}?"
                          for name, required in self.items)
        return f"({body})"


@dataclass(frozen=True)
class RepeatParticle(Particle):
    """``child{minimum, maximum}``; ``maximum=None`` means unbounded."""

    child: Particle
    minimum: int
    maximum: int | None

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ContentModelError("negative minimum repetition")
        if self.maximum is not None and self.maximum < self.minimum:
            raise ContentModelError("maximum repetition below minimum")

    def nullable(self) -> bool:
        return self.minimum == 0 or self.child.nullable()

    def names(self) -> Iterator[str]:
        yield from self.child.names()

    def __repr__(self) -> str:
        upper = "∞" if self.maximum is None else str(self.maximum)
        return f"{self.child!r}{{{self.minimum},{upper}}}"


def _wrap_repetition(particle: Particle,
                     repetition: RepetitionFactor) -> Particle:
    if repetition.minimum == 1 and repetition.maximum == 1:
        return particle
    maximum = None if repetition.unbounded else int(repetition.maximum)
    if maximum == 0:
        return EmptyParticle()
    return RepeatParticle(particle, repetition.minimum, maximum)


def compile_group(group: "GroupDefinition | AllGroup") -> Particle:
    """Compile a group definition into its particle normal form."""
    if isinstance(group, AllGroup):
        items = tuple(
            (member.name, member.repetition.minimum >= 1)
            for member in group.members
            if member.repetition.maximum != 0)
        particle: Particle = AllParticle(items) if items \
            else EmptyParticle()
        return _wrap_repetition(particle, group.repetition)
    if group.empty_content:
        return EmptyParticle()
    children: list[Particle] = []
    for member in group.members:
        if isinstance(member, ElementDeclaration):
            children.append(
                _wrap_repetition(NameParticle(member.name),
                                 member.repetition))
        elif isinstance(member, GroupDefinition):
            children.append(compile_group(member))
        else:  # pragma: no cover - AST guarantees the union
            raise ContentModelError(f"bad group member {member!r}")
    if group.combination is CombinationFactor.SEQUENCE:
        inner: Particle = SequenceParticle(tuple(children))
    else:
        inner = ChoiceParticle(tuple(children))
    return _wrap_repetition(inner, group.repetition)


def expand_particle(particle: Particle, limit: int = 100_000) -> Particle:
    """Rewrite bounded repetition into explicit copies.

    ``R{m,n}`` becomes ``R^m (R?)^(n-m)`` and ``R{m,∞}`` becomes
    ``R^(m-1) R+``-style ``R^m R*``.  The Glushkov construction needs
    this expanded form; *limit* bounds the blow-up.
    """
    count = _expansion_size(particle)
    if count > limit:
        raise ContentModelError(
            f"content model expands to {count} positions (> limit {limit})")
    return _expand(particle)


def _expansion_size(particle: Particle) -> int:
    if isinstance(particle, (EmptyParticle, NameParticle)):
        return 1
    if isinstance(particle, AllParticle):
        import math
        count = len(particle.items)
        return math.factorial(count) * count if count else 1
    if isinstance(particle, (SequenceParticle, ChoiceParticle)):
        return sum(_expansion_size(c) for c in particle.children)
    if isinstance(particle, RepeatParticle):
        copies = (particle.minimum if particle.maximum is None
                  else particle.maximum)
        return max(copies, 1) * _expansion_size(particle.child)
    raise ContentModelError(f"unknown particle {particle!r}")


def _expand(particle: Particle) -> Particle:
    if isinstance(particle, (EmptyParticle, NameParticle)):
        return particle
    if isinstance(particle, AllParticle):
        # Interleave as the choice over all member permutations; only
        # viable for small groups (the expansion limit guards this).
        import itertools
        alternatives = []
        for permutation in itertools.permutations(particle.items):
            parts = []
            for name, required in permutation:
                leaf = NameParticle(name)
                parts.append(leaf if required
                             else RepeatParticle(leaf, 0, 1))
            alternatives.append(
                SequenceParticle(tuple(parts)) if len(parts) != 1
                else parts[0])
        if not alternatives:
            return EmptyParticle()
        return ChoiceParticle(tuple(alternatives))
    if isinstance(particle, SequenceParticle):
        return SequenceParticle(
            tuple(_expand(c) for c in particle.children))
    if isinstance(particle, ChoiceParticle):
        return ChoiceParticle(tuple(_expand(c) for c in particle.children))
    if isinstance(particle, RepeatParticle):
        child = _expand(particle.child)
        required = [child] * particle.minimum
        if particle.maximum is None:
            # R{m,∞} = R^m R*  (star encoded as Repeat(0, None), which
            # the Glushkov construction handles natively).
            star = RepeatParticle(child, 0, None)
            return SequenceParticle(tuple(required + [star]))
        optional = [RepeatParticle(child, 0, 1)
                    ] * (particle.maximum - particle.minimum)
        parts = required + optional
        if not parts:
            return EmptyParticle()
        if len(parts) == 1:
            return parts[0]
        return SequenceParticle(tuple(parts))
    raise ContentModelError(f"unknown particle {particle!r}")
