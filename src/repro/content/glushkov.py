"""Glushkov position automaton for content models.

The classical construction: every name occurrence in the (expanded)
particle becomes a *position*; the automaton's transitions follow the
``first``/``follow`` sets.  It provides

* an independent matcher used to cross-check the derivative matcher,
* the 1-unambiguity test that underlies XSD's Unique Particle
  Attribution constraint (two competing positions with the same name).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ContentModelError
from repro.content.particles import (
    ChoiceParticle,
    EmptyParticle,
    NameParticle,
    Particle,
    RepeatParticle,
    SequenceParticle,
    expand_particle,
)


@dataclass
class _Linearized:
    """The annotated form: nullable flag plus first/last/follow sets."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


class GlushkovAutomaton:
    """A position NFA for one content model."""

    def __init__(self, particle: Particle,
                 expansion_limit: int = 100_000) -> None:
        expanded = expand_particle(particle, limit=expansion_limit)
        self._names: list[str] = []
        self._origins: list[int] = []
        self._follow: dict[int, set[int]] = {}
        info = self._build(expanded)
        self._nullable = info.nullable
        self._first = info.first
        self._last = info.last

    # -- construction ----------------------------------------------------

    def _new_position(self, name: str, origin: int) -> int:
        position = len(self._names)
        self._names.append(name)
        self._origins.append(origin)
        self._follow[position] = set()
        return position

    def _build(self, particle: Particle) -> _Linearized:
        if isinstance(particle, EmptyParticle):
            return _Linearized(True, frozenset(), frozenset())
        if isinstance(particle, NameParticle):
            # Expansion of a counted particle reuses the same NameParticle
            # object, so object identity recovers the original particle:
            # positions sharing an origin do not compete under UPA.
            position = self._new_position(particle.name, id(particle))
            singleton = frozenset((position,))
            return _Linearized(False, singleton, singleton)
        if isinstance(particle, ChoiceParticle):
            if not particle.children:
                return _Linearized(False, frozenset(), frozenset())
            parts = [self._build(child) for child in particle.children]
            return _Linearized(
                any(p.nullable for p in parts),
                frozenset().union(*(p.first for p in parts)),
                frozenset().union(*(p.last for p in parts)))
        if isinstance(particle, SequenceParticle):
            result = _Linearized(True, frozenset(), frozenset())
            for child in particle.children:
                part = self._build(child)
                for position in result.last:
                    self._follow[position] |= part.first
                result = _Linearized(
                    result.nullable and part.nullable,
                    result.first | part.first if result.nullable
                    else result.first,
                    part.last | result.last if part.nullable
                    else part.last)
            return result
        if isinstance(particle, RepeatParticle):
            part = self._build(particle.child)
            if particle.maximum is None and particle.minimum == 0:
                # Kleene star: last positions loop back to first.
                for position in part.last:
                    self._follow[position] |= part.first
                return _Linearized(True, part.first, part.last)
            if particle.minimum == 0 and particle.maximum == 1:
                return _Linearized(True, part.first, part.last)
            raise ContentModelError(
                f"unexpanded repetition {particle!r} reached Glushkov "
                "construction")
        raise ContentModelError(f"unknown particle {particle!r}")

    # -- matching ----------------------------------------------------------

    @property
    def position_count(self) -> int:
        return len(self._names)

    def matches(self, names: Iterable[str]) -> bool:
        """Simulate the NFA over the name sequence."""
        names = list(names)
        if not names:
            return self._nullable
        current = {p for p in self._first if self._names[p] == names[0]}
        if not current:
            return False
        for name in names[1:]:
            current = {
                q
                for p in current
                for q in self._follow[p]
                if self._names[q] == name}
            if not current:
                return False
        return bool(current & self._last)

    # -- UPA / 1-unambiguity ------------------------------------------------

    def competing_positions(self) -> list[tuple[str, int, int]]:
        """Pairs of distinct positions with equal names competing in one
        first/follow set — the witnesses of a UPA violation."""
        conflicts: list[tuple[str, int, int]] = []

        def scan(positions: Iterable[int]) -> None:
            by_name: dict[str, int] = {}
            for position in sorted(positions):
                name = self._names[position]
                if name in by_name:
                    other = by_name[name]
                    if self._origins[other] != self._origins[position]:
                        conflicts.append((name, other, position))
                else:
                    by_name[name] = position
        scan(self._first)
        for followers in self._follow.values():
            scan(followers)
        return conflicts

    def is_deterministic(self) -> bool:
        """True iff the content model satisfies Unique Particle
        Attribution (the expression is 1-unambiguous)."""
        return not self.competing_positions()
