"""Statistics-driven cost model for candidate query plans.

The planner (:mod:`repro.query.planner`) can answer one compiled path
several ways — block scan, hybrid scan+navigate, a value- or
path-index probe, or naive per-descriptor navigation.  PR 5's indexes
made the wrong pick a 10-129x swing; this module prices every
candidate from the :class:`~repro.obs.statistics.StatisticsCollector`
numbers the engine already maintains per descriptive-schema node
(descriptor counts, distinct typed values, min/max, byte sizing) so
the planner can take the cheapest instead of applying fixed
structural precedence.

Each :class:`CostEstimate` decomposes a candidate into the quantities
the §9 physical design actually spends:

* **blocks** touched — block fan-in is modeled from the per-node byte
  sizing (``bytes / BLOCK_TARGET_BYTES``, capped by the engine's
  descriptor capacity), so fat values mean more blocks;
* **scan rows** swept inside those blocks;
* **postings** read out of an index posting list;
* **residual** predicate evaluations — per-instance tests the probe
  or scan could not answer;
* **navigations** — context-node×step units of per-descriptor
  navigation (hybrid/index suffixes, the whole path for naive);
* **output cardinality** — the selectivity-discounted result size
  (surfaced to EXPLAIN as ``cost.estimated`` for calibration against
  the observed row count).

Selectivity uses the classic uniform assumptions over the collected
digest, never the raw value multiset (a real system persists only the
digest): an equality probe selects ``1/distinct`` of the instances
that carry the value, an existence test selects the carry fraction,
and a probe key outside the collected ``[min, max]`` range estimates
to zero rows.  The weights below are unit costs in an abstract
machine, not nanoseconds — only their ratios matter, and EXPLAIN
prints estimated units next to observed time so operators can judge
the calibration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.query.paths import (
    AttributePredicate,
    ChildPredicate,
    PositionPredicate,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.statistics import NodeStats, StatisticsCollector
    from repro.query.planner import CompiledPlan
    from repro.storage.dschema import DescriptiveSchema, SchemaNode

#: Modeled page size: how many descriptor bytes one block holds.  The
#: in-memory engine caps blocks by descriptor *count*; pricing by
#: bytes as well makes value-heavy nodes cost more blocks, which is
#: what a paged implementation would pay.
BLOCK_TARGET_BYTES = 4096

#: Unit cost of touching one block (pointer chase, cache-line misses).
COST_BLOCK = 12.0
#: Unit cost of sweeping one descriptor inside a scanned block.
COST_SCAN_ROW = 1.0
#: Unit cost of reading one posting-list entry (cheaper than a sweep
#: row: the list is pre-merged and carries no name test).
COST_POSTING = 0.6
#: Unit cost of one residual predicate evaluation (attribute walk +
#: string compare per instance).
COST_RESIDUAL = 2.5
#: Unit cost of navigating one context node across one axis step.
COST_NAVIGATE = 4.0
#: Unit cost of emitting one result row (append + order-merge share).
COST_OUTPUT = 0.2
#: Fixed cost of one index probe (hash/bisect lookup).
COST_PROBE = 8.0

#: Fallbacks when a node has no collected statistics yet.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_EXISTS_SELECTIVITY = 0.5


class CostEstimate:
    """The priced decomposition of one candidate plan."""

    __slots__ = ("strategy", "index_used", "blocks", "scan_rows",
                 "postings", "residual", "navigations", "output_rows",
                 "total", "chosen")

    def __init__(self, strategy: str, index_used: str = "") -> None:
        self.strategy = strategy
        self.index_used = index_used
        self.blocks = 0.0
        self.scan_rows = 0.0
        self.postings = 0.0
        self.residual = 0.0
        self.navigations = 0.0
        self.output_rows = 0.0
        self.total = 0.0
        #: Set by the planner on the winning candidate.
        self.chosen = False

    def finish(self) -> "CostEstimate":
        """Fold the component counts into the scalar total."""
        self.total = (self.blocks * COST_BLOCK
                      + self.scan_rows * COST_SCAN_ROW
                      + self.postings * COST_POSTING
                      + self.residual * COST_RESIDUAL
                      + self.navigations * COST_NAVIGATE
                      + self.output_rows * COST_OUTPUT)
        if self.strategy == "index":
            self.total += COST_PROBE
        return self

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "index_used": self.index_used,
            "blocks": round(self.blocks, 1),
            "scan_rows": round(self.scan_rows, 1),
            "postings": round(self.postings, 1),
            "residual": round(self.residual, 1),
            "navigations": round(self.navigations, 1),
            "output_rows": round(self.output_rows, 1),
            "total": round(self.total, 1),
            "chosen": self.chosen,
        }

    def __repr__(self) -> str:
        return (f"CostEstimate({self.strategy}"
                f"{' ' + self.index_used if self.index_used else ''}, "
                f"total={self.total:.1f}, "
                f"out={self.output_rows:.1f})")


def _in_range(lexical: str, low: str, high: str) -> bool:
    """Is *lexical* within the collected value range?  Compared in the
    numeric space when all three parse as numbers (mirroring the typed
    ordering of the statistics digest), lexically otherwise."""
    try:
        return float(low) <= float(lexical) <= float(high)
    except ValueError:
        return low <= lexical <= high


class CostModel:
    """Prices candidate plans from one engine's statistics.

    Every statistics read records the schema node it consulted in
    :attr:`consulted` — the planner stamps that set onto the chosen
    plan so the statistics epoch can re-plan exactly the plans whose
    pricing inputs drifted (and restamp every other plan in place).
    """

    def __init__(self, stats: "StatisticsCollector",
                 block_capacity: int = 64) -> None:
        self._stats = stats
        self._capacity = max(1, block_capacity)
        self.consulted: set = set()

    # -- statistics reads (every read records the consulted node) ------

    def node_stats(self, schema_node: "SchemaNode"
                   ) -> Optional["NodeStats"]:
        self.consulted.add(schema_node)
        return self._stats.stats_for(schema_node)

    def rows(self, schema_node: "SchemaNode") -> float:
        stats = self.node_stats(schema_node)
        return float(stats.descriptors) if stats is not None else 0.0

    def blocks(self, schema_node: "SchemaNode") -> float:
        """Modeled block fan-in: descriptor count over rows-per-block,
        where rows-per-block is the byte-derived fan-in capped by the
        engine's per-block descriptor capacity."""
        stats = self.node_stats(schema_node)
        if stats is None or stats.descriptors <= 0:
            return 0.0
        avg_bytes = stats.byte_size / stats.descriptors
        per_block = min(self._capacity,
                        max(1, int(BLOCK_TARGET_BYTES
                                   // max(1.0, avg_bytes))))
        return float(-(-stats.descriptors // per_block))

    # -- selectivity ---------------------------------------------------

    def _value_selectivity(self, value_node: "SchemaNode",
                           lexical: str) -> float:
        """Fraction of the value-carrying instances whose value equals
        *lexical*, under the uniform-distinct assumption with a
        min/max range check (an out-of-range literal estimates to
        zero)."""
        stats = self.node_stats(value_node)
        if stats is None or stats.descriptors <= 0:
            return DEFAULT_EQ_SELECTIVITY
        value_range = stats.value_range()
        if value_range is not None \
                and not _in_range(lexical, *value_range):
            return 0.0
        return 1.0 / max(1, stats.distinct_values)

    def _text_child(self, schema_node: "SchemaNode"
                    ) -> Optional["SchemaNode"]:
        for child in schema_node.children:
            if child.node_type == "text":
                return child
        return None

    def predicate_selectivity(self, schema_node: "SchemaNode",
                              predicate) -> float:
        """Estimated fraction of *schema_node* instances surviving
        *predicate*."""
        rows = self.rows(schema_node)
        if rows <= 0:
            return 0.0
        if isinstance(predicate, PositionPredicate):
            # Positional keeps (at most) one instance per parent group.
            parent = schema_node.parent
            if parent is None:
                return 1.0 / rows
            groups = self.rows(parent)
            return min(1.0, groups / rows) if groups else 1.0 / rows
        if isinstance(predicate, AttributePredicate):
            carriers = [child for child in schema_node.children
                        if child.node_type == "attribute"
                        and child.name.local == predicate.name]
            value_holder = carriers[0] if carriers else None
        elif isinstance(predicate, ChildPredicate):
            carriers = [child for child in schema_node.children
                        if child.node_type == "element"
                        and child.name is not None
                        and child.name.local == predicate.name]
            # An element compares by string value — its text child
            # holds the collected value distribution.
            value_holder = self._text_child(carriers[0]) \
                if carriers else None
        else:  # pragma: no cover - unknown predicate kinds never plan
            return DEFAULT_EXISTS_SELECTIVITY
        if not carriers:
            return 0.0
        carrier_rows = sum(self.rows(child) for child in carriers)
        present = min(1.0, carrier_rows / rows)
        if predicate.value is None:
            return present
        if value_holder is None:
            return present * DEFAULT_EQ_SELECTIVITY
        return present * self._value_selectivity(value_holder,
                                                 predicate.value)

    # -- per-strategy pricing ------------------------------------------

    def _sweep(self, estimate: CostEstimate, schema_nodes,
               predicates) -> float:
        """Charge a block sweep of *schema_nodes* plus the residual
        predicate cascade; returns the estimated surviving rows."""
        survivors = 0.0
        for schema_node in schema_nodes:
            rows = self.rows(schema_node)
            estimate.blocks += self.blocks(schema_node)
            estimate.scan_rows += rows
            for predicate in predicates:
                estimate.residual += rows
                rows *= self.predicate_selectivity(schema_node,
                                                   predicate)
            survivors += rows
        return survivors

    def _suffix(self, estimate: CostEstimate, plan: "CompiledPlan",
                schema: "DescriptiveSchema", context_rows: float,
                context_total: float) -> float:
        """Charge the hybrid/index suffix navigation; returns the
        estimated final output rows."""
        from repro.query.planner import match_schema_nodes
        suffix_steps = plan.path.steps[plan.split + 1:]
        estimate.navigations += context_rows * len(suffix_steps)
        final_nodes = match_schema_nodes(schema.root, plan.path.steps)
        final_rows = sum(self.rows(node) for node in final_nodes)
        fraction = (context_rows / context_total) if context_total \
            else 0.0
        return final_rows * min(1.0, fraction)

    def price(self, plan: "CompiledPlan",
              schema: "DescriptiveSchema") -> CostEstimate:
        """The :class:`CostEstimate` of one candidate plan."""
        strategy = plan.strategy
        estimate = CostEstimate(strategy, plan.index_used)
        if strategy == "empty":
            return estimate.finish()
        if strategy == "naive":
            return self._price_naive(estimate, plan, schema)
        if strategy == "index":
            return self._price_probe(estimate, plan, schema)
        # scan / hybrid: sweep the matched block lists, test the
        # decisive step's predicates per instance.
        steps = plan.path.steps
        scan_step = steps[-1] if plan.split is None \
            else steps[plan.split]
        survivors = self._sweep(estimate, plan.scan_nodes,
                                scan_step.predicates)
        if strategy == "hybrid":
            estimate.output_rows = self._suffix(
                estimate, plan, schema, survivors, estimate.scan_rows)
        else:
            estimate.output_rows = survivors
        return estimate.finish()

    def _subtree_rows(self, schema_node: "SchemaNode") -> float:
        total = self.rows(schema_node)
        for child in schema_node.children:
            total += self._subtree_rows(child)
        return total

    def _price_naive(self, estimate: CostEstimate,
                     plan: "CompiledPlan",
                     schema: "DescriptiveSchema") -> CostEstimate:
        """Per-descriptor navigation: every step visits every child
        (or descendant) of the surviving frontier *before* the name
        test — that candidate sweep, not the matched set, is what
        navigation pays per context node."""
        from repro.query.planner import match_schema_nodes
        steps = plan.path.steps
        frontier: list = [schema.root]
        final_rows = 0.0
        for depth, step in enumerate(steps):
            visited: set = set()
            candidates = 0.0
            for schema_node in frontier:
                if step.axis == "child":
                    for child in schema_node.children:
                        if child not in visited:
                            visited.add(child)
                            candidates += self.rows(child)
                else:
                    if schema_node not in visited:
                        visited.add(schema_node)
                        candidates += self._subtree_rows(schema_node)
            estimate.navigations += candidates
            frontier = match_schema_nodes(schema.root,
                                          steps[:depth + 1])
            final_rows = sum(self.rows(node) for node in frontier)
            for _predicate in step.predicates:
                estimate.residual += final_rows
        estimate.output_rows = final_rows
        return estimate.finish()

    def _price_probe(self, estimate: CostEstimate,
                     plan: "CompiledPlan",
                     schema: "DescriptiveSchema") -> CostEstimate:
        probe = plan.probe
        assert probe is not None
        if probe[0] == "path":
            # Pre-merged posting list of the covered schema nodes.
            postings = sum(self.rows(node) for node in plan.scan_nodes)
            estimate.postings = postings
            estimate.output_rows = postings
            return estimate.finish()
        mode, index, key, via_parent = probe
        value_node = index.value_node
        carrier_rows = self.rows(value_node)
        value_holder = value_node if index.attribute \
            else (self._text_child(value_node) or value_node)
        if mode == "eq":
            postings = carrier_rows * self._value_selectivity(
                value_holder, str(key))
        else:  # exists
            postings = carrier_rows
        estimate.postings = postings
        # The node whose instances the probe result holds (and residual
        # predicates test): for a via_parent (element-value) probe the
        # postings are children mapped to their deduplicated parents.
        owner = index.owner_node.parent if via_parent \
            else index.owner_node
        if via_parent and owner is not None:
            owner_rows = self.rows(owner)
            survivors = min(postings, owner_rows) if owner_rows \
                else postings
        else:
            survivors = postings
        for predicate in plan.rest_predicates:
            estimate.residual += survivors
            if owner is not None:
                survivors *= self.predicate_selectivity(owner,
                                                        predicate)
        if plan.split is not None:
            context_total = self.rows(owner) if owner is not None \
                else survivors
            survivors = self._suffix(estimate, plan, schema,
                                     survivors,
                                     context_total or survivors)
        estimate.output_rows = survivors
        return estimate.finish()
