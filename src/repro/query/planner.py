"""Query plan compilation against the descriptive schema.

Section 9's pitch is that the descriptive schema lets the engine
answer a path query by scanning only the blocks of the matching schema
nodes.  The evaluator used to re-derive that match on every call; this
module compiles a path **once** into a :class:`CompiledPlan` — the
matched schema nodes plus an execution strategy — and caches the plan
keyed by the path and the schema's growth version.  Because every
document path has exactly one schema path (the defining property of
Section 9.1), a plan stays valid until the schema itself grows: pure
data inserts add descriptors to existing block lists, which the plan's
live block scan picks up for free.

Strategies, from fastest to slowest:

* ``empty`` — no schema node can match (including structural pruning:
  a predicate like ``[@isbn]`` on a schema node with no ``@isbn``
  schema child can never hold, Section 9.1 again), so the result is
  ``[]`` with no data access at all;
* ``scan`` — scan the block lists of the matched schema nodes and
  apply final-step predicates per instance;
* ``hybrid`` — the path has predicates on an *inner* step: scan the
  blocks for the prefix ending at that step, filter instances, then
  navigate only the remaining steps (the old code fell back to naive
  navigation from the root for the whole path);
* ``naive`` — per-descriptor navigation; required only for positional
  predicates on ``//`` steps, whose whole-selection grouping a flat
  block scan cannot reproduce.

With declared secondary indexes (:mod:`repro.storage.indexes`) a
fifth strategy slots in above ``scan``:

* ``index`` — the step's first value predicate is answered by a
  typed-value index probe (equality or existence) instead of scanning
  and testing every instance, or the whole predicate-free path is
  answered by a path index's pre-merged posting list.  Remaining
  predicates and suffix steps run exactly as in ``scan``/``hybrid``.

Plans additionally stamp the index *epoch* (a DDL counter): when an
index is created or dropped, a cached plan is recompiled on next use
and kept (restamped) if its decision did not change — so DDL
invalidates exactly the affected plans.

With engine statistics available (the default through
:class:`QueryPlanner`), the strategy is no longer picked by fixed
structural precedence: the planner enumerates **every** applicable
candidate — the scan/hybrid baseline, one value-index probe per
eligible predicate, the path-index probe, and priced-naive — and
takes the cheapest under the :mod:`repro.query.cost` model.  Plans
then also stamp the **statistics epoch** and the schema nodes whose
statistics they priced: when collected statistics drift past the
relative threshold, exactly the plans whose pricing inputs moved are
re-priced (and kept when the decision stands); every other plan is
restamped in place without recompiling — the same exactly-scoped
invalidation contract the index epoch established.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro import obs
from repro.obs import explain as _explain
from repro.query.cache import (
    LRUCache,
    PLAN_CACHE_CAPACITY,
    CacheStats,
    cached_parse_path,
)
from repro.query.paths import (
    AttributePredicate,
    ChildPredicate,
    Path,
    PositionPredicate,
    Step,
)
from repro.storage.dschema import SchemaNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.query.engine import StorageQueryEngine
    from repro.storage.dschema import DescriptiveSchema
    from repro.storage.engine import NodeDescriptor


# ----------------------------------------------------------------------
# Schema matching (shared by the planner and the public
# ``matching_schema_nodes`` of the query engine).


def _schema_candidates(schema_node: SchemaNode,
                       step: Step) -> Iterator[SchemaNode]:
    if step.axis == "child":
        yield from schema_node.children
    else:
        def walk(node: SchemaNode) -> Iterator[SchemaNode]:
            yield node
            for child in node.children:
                yield from walk(child)
        yield from walk(schema_node)


def _schema_accepts(schema_node: SchemaNode, step: Step) -> bool:
    if step.kind == "text":
        return schema_node.node_type == "text"
    if step.kind == "attribute":
        return (schema_node.node_type == "attribute"
                and step.matches_name(schema_node.name.local))
    if schema_node.node_type != "element":
        return False
    return step.matches_name(schema_node.name.local)


def match_schema_nodes(root: SchemaNode,
                       steps: tuple[Step, ...]) -> list[SchemaNode]:
    """Schema nodes reached from *root* along *steps* (predicates are
    ignored — this is the pure Section 9.1 path match).

    Deduplication holds the schema nodes themselves (identity hash),
    not their transient ``id()``s.
    """
    current: list[SchemaNode] = [root]
    for step in steps:
        bucket: list[SchemaNode] = []
        seen: set[SchemaNode] = set()
        for schema_node in current:
            for candidate in _schema_candidates(schema_node, step):
                if candidate not in seen and _schema_accepts(candidate,
                                                             step):
                    seen.add(candidate)
                    bucket.append(candidate)
        current = bucket
    return current


def structurally_feasible(schema_node: SchemaNode, predicates) -> bool:
    """Can *any* instance of this schema node satisfy the predicates?

    ``[@name…]`` needs an ``@name`` attribute schema child and
    ``[name…]`` an element schema child ``name`` — if the descriptive
    schema has no such child, no instance anywhere has one (the
    node→schema-node mapping is surjective), so the schema node can be
    pruned without touching a single block.  Positional predicates
    never prune.
    """
    for predicate in predicates:
        if isinstance(predicate, AttributePredicate):
            if not any(child.node_type == "attribute"
                       and child.name.local == predicate.name
                       for child in schema_node.children):
                return False
        elif isinstance(predicate, ChildPredicate):
            if not any(child.node_type == "element"
                       and child.name is not None
                       and child.name.local == predicate.name
                       for child in schema_node.children):
                return False
    return True


# ----------------------------------------------------------------------
# Compiled plans.


def _doc_order_key(descriptor: "NodeDescriptor") -> bytes:
    """Memoized packed document-order key (§9.3) — C-level bytewise
    comparisons instead of per-comparison tuple walks."""
    return descriptor.nid.sort_key()


#: Sentinel stored in :attr:`CompiledPlan.executor` when the lowering
#: declines the plan's shape — execution then stays interpreted, and
#: the decision is not retried until the plan is invalidated.
NOT_LOWERABLE = object()


class CompiledPlan:
    """One path compiled against one descriptive-schema version."""

    __slots__ = ("path", "schema_version", "strategy", "scan_nodes",
                 "split", "pruned_schema_nodes", "index_epoch",
                 "probe", "rest_predicates", "index_used", "executor",
                 "not_lowerable_reason", "stats_epoch", "stats_nodes",
                 "cost", "cost_table")

    def __init__(self, path: Path, schema_version: int, strategy: str,
                 scan_nodes: tuple[SchemaNode, ...],
                 split: Optional[int],
                 pruned_schema_nodes: int,
                 index_epoch: int = 0,
                 probe: Optional[tuple] = None,
                 rest_predicates: tuple = (),
                 index_used: str = "") -> None:
        self.path = path
        self.schema_version = schema_version
        #: "empty" | "index" | "scan" | "hybrid" | "naive".
        self.strategy = strategy
        #: Schema nodes whose block lists the plan scans ("scan": the
        #: full path; "hybrid": the prefix ending at the predicate
        #: step).
        self.scan_nodes = scan_nodes
        #: For "hybrid": index of the first inner step with predicates.
        self.split = split
        #: Schema nodes discarded by structural predicate pruning.
        self.pruned_schema_nodes = pruned_schema_nodes
        #: DDL epoch the plan was compiled under (restamped by the
        #: cache when DDL does not change the plan's decision).
        self.index_epoch = index_epoch
        #: "index" strategy: ("eq", index, key, via_parent),
        #: ("exists", index, None, via_parent) or ("path", index).
        self.probe = probe
        #: Predicates of the probed step still tested per instance.
        self.rest_predicates = rest_predicates
        #: "value:<path>" / "path:<path>" (EXPLAIN), "" otherwise.
        self.index_used = index_used
        #: Lazily lowered closure chain (:mod:`repro.query.compiled`);
        #: built on the first cached execution, dropped whenever the
        #: plan is restamped after DDL (the probe bindings may differ).
        self.executor = None
        #: Why the plan stays interpreted (set at planning time for
        #: "naive" plans, by the lowering when it declines; "" while
        #: undetermined or when the plan compiled).
        self.not_lowerable_reason = ""
        #: Statistics epoch the plan was priced under (restamped in
        #: place while none of :attr:`stats_nodes` drift).
        self.stats_epoch = 0
        #: Schema nodes whose statistics the cost model consulted when
        #: choosing this plan — the exact re-plan scope of a
        #: statistics-epoch bump.  Empty for structurally-forced plans
        #: (their decision never depends on statistics).
        self.stats_nodes: tuple[SchemaNode, ...] = ()
        #: The chosen candidate's :class:`~repro.query.cost.CostEstimate`
        #: (None when the plan was picked structurally).
        self.cost = None
        #: Every priced candidate, chosen one flagged — the EXPLAIN
        #: cost table.
        self.cost_table: tuple = ()

    def execute(self, queries: "StorageQueryEngine"
                ) -> "list[NodeDescriptor]":
        """Run the plan over the engine's *current* data.

        The block scan is live, so descriptors inserted after
        compilation are found as long as the schema has not grown
        (which the plan cache checks before handing out a plan).
        """
        if self.strategy == "naive":
            return queries.evaluate_naive(self.path)
        if self.strategy == "empty":
            return []
        if self.strategy == "index":
            return self._execute_probe(queries)
        engine = queries.engine
        if len(self.scan_nodes) == 1:
            result = list(engine.scan_schema_node(self.scan_nodes[0]))
        else:
            # Each per-schema-node scan is already in document order;
            # sorting the concatenation restores global order in one
            # linear galloping merge (Timsort recognizes the runs),
            # which beats a Python-level k-way heap merge.
            result = [descriptor
                      for schema_node in self.scan_nodes
                      for descriptor in engine.scan_schema_node(
                          schema_node)]
            result.sort(key=_doc_order_key)
        context = _explain.ACTIVE
        if context is not None:
            context.nodes_visited += len(result)
        steps = self.path.steps
        scan_step = steps[-1] if self.split is None else steps[self.split]
        if scan_step.predicates:
            result = queries._apply_final_predicates(result,
                                                     scan_step.predicates)
        if self.strategy == "hybrid":
            result = queries._navigate_steps(result,
                                             steps[self.split + 1:])
        return result

    def execute_compiled(self, queries: "StorageQueryEngine"
                         ) -> "list[NodeDescriptor]":
        """Run the plan through its lowered closure chain.

        Lowering happens once, on the first cached execution, and the
        resulting :class:`~repro.query.compiled.CompiledExecutor` is
        pinned to the plan: the cache drops the whole plan when the
        schema grows and nulls :attr:`executor` when a DDL restamp
        keeps the plan, so a live executor is always consistent with
        the bindings it closed over.  Falls back to the interpreted
        :meth:`execute` for shapes the lowering declines.
        """
        executor = self.executor
        if executor is None:
            from repro.query.compiled import lower
            executor = lower(self, queries)
            self.executor = executor
        if executor is NOT_LOWERABLE:
            context = _explain.ACTIVE
            if context is not None:
                context.not_lowerable_reason = self.not_lowerable_reason
            return self.execute(queries)
        context = _explain.ACTIVE
        if context is not None:
            return executor.run_explained(queries, context)
        return executor.run(queries)

    def _execute_probe(self, queries: "StorageQueryEngine"
                       ) -> "list[NodeDescriptor]":
        """Answer the probed step from the index posting lists."""
        probe = self.probe
        assert probe is not None
        if probe[0] == "path":
            result = probe[1].probe()
        else:
            mode, index, key, via_parent = probe
            owners = (index.probe_eq(key) if mode == "eq"
                      else index.probe_exists())
            if via_parent:
                # An element-value index posts the children; the
                # predicate selects their parents (deduplicated,
                # document order preserved — equal-depth paths keep
                # parent order aligned with child order).
                seen: set[bytes] = set()
                result = []
                for owner in owners:
                    parent = owner.parent
                    if parent is None:  # pragma: no cover - defensive
                        continue
                    parent_key = parent.nid.sort_key()
                    if parent_key not in seen:
                        seen.add(parent_key)
                        result.append(parent)
            else:
                result = owners
        context = _explain.ACTIVE
        if context is not None:
            context.nodes_visited += len(result)
        if self.rest_predicates:
            result = queries._apply_final_predicates(
                result, self.rest_predicates)
        if self.split is not None:
            result = queries._navigate_steps(
                result, self.path.steps[self.split + 1:])
        return result

    def __repr__(self) -> str:
        return (f"CompiledPlan({self.path!r}, {self.strategy}, "
                f"{len(self.scan_nodes)} schema nodes, "
                f"v{self.schema_version})")


#: Deterministic tie-break when candidates price equal: the historical
#: structural precedence (probe > scan/hybrid > naive).
_STRATEGY_RANK = {"empty": 0, "index": 1, "scan": 2, "hybrid": 3,
                  "naive": 4}

#: Planner policies: ``cost`` prices every candidate and takes the
#: cheapest (falling back to ``structural`` without statistics);
#: ``structural`` keeps the historical fixed precedence; ``scan``
#: never probes an index; ``naive`` always navigates.  The forced
#: policies exist for the benchmark harness and the parity tests —
#: every policy returns the same rows.
POLICIES = ("cost", "structural", "scan", "naive")


def compile_plan(path: Path, schema: "DescriptiveSchema",
                 indexes=None, stats=None, block_capacity: int = 64,
                 policy: str = "cost") -> CompiledPlan:
    """Compile *path* against the current schema (no caching here).

    *indexes* is the engine's :class:`IndexManager` (or None for the
    pure scan planner, e.g. the index-free ``evaluate_schema_driven``
    baseline).  *stats* is the engine's
    :class:`~repro.obs.statistics.StatisticsCollector`; when given
    (and *policy* is ``cost``) every applicable candidate strategy is
    priced under :mod:`repro.query.cost` and the cheapest wins,
    otherwise the historical structural precedence applies.
    """
    if obs.ENABLED:
        with obs.TRACER.span("query.plan.compile", path=str(path)):
            plan = _plan_for_policy(path, schema, indexes, stats,
                                    block_capacity, policy)
    elif obs.RECORDING:
        plan = _plan_for_policy(path, schema, indexes, stats,
                                block_capacity, policy)
    else:
        return _plan_for_policy(path, schema, indexes, stats,
                                block_capacity, policy)
    obs.REGISTRY.counter("query.plan.compiles").inc()
    obs.REGISTRY.counter(
        f"query.plan.strategy.{plan.strategy}").inc()
    if plan.pruned_schema_nodes:
        obs.REGISTRY.counter("query.plan.pruned_schema_nodes").inc(
            plan.pruned_schema_nodes)
    return plan


def _plan_for_policy(path: Path, schema: "DescriptiveSchema", indexes,
                     stats, block_capacity: int,
                     policy: str) -> CompiledPlan:
    if policy == "naive":
        plan = CompiledPlan(path, schema.version, "naive", (), None, 0,
                            index_epoch=indexes.epoch
                            if indexes is not None else 0)
        plan.not_lowerable_reason = "naive policy forced"
    elif policy == "scan":
        # Structural planning with the indexes hidden — but stamped
        # with the real DDL epoch so the plan cache does not loop.
        plan = _compile_plan(path, schema, None)
        plan.index_epoch = indexes.epoch if indexes is not None else 0
    elif policy == "structural" or stats is None:
        plan = _compile_plan(path, schema, indexes)
    else:
        plan = _costed_plan(path, schema, indexes, stats,
                            block_capacity)
    if stats is not None:
        plan.stats_epoch = stats.epoch
    return plan


def _forced_naive(path: Path, version: int,
                  epoch: int) -> Optional[CompiledPlan]:
    """The one structurally-forced strategy: positional predicates on
    ``//`` steps have whole-selection semantics no block scan (or
    probe) reproduces, so the whole query navigates."""
    for step in path.steps:
        if (step.axis == "descendant-or-self"
                and any(isinstance(p, PositionPredicate)
                        for p in step.predicates)):
            plan = CompiledPlan(path, version, "naive", (), None, 0,
                                index_epoch=epoch)
            plan.not_lowerable_reason = (
                "positional predicate on a descendant step needs "
                "whole-selection navigation")
            return plan
    return None


def _candidate_plans(path: Path, schema: "DescriptiveSchema", indexes
                     ) -> "tuple[list[CompiledPlan], int]":
    """Every strategy that can answer *path*, plus the index of the
    candidate the historical structural precedence would pick.

    The first entry is always the structurally-forced plan when one
    exists (naive-on-``//``-positional, or ``empty``), in which case
    it is the only entry.  Otherwise the list holds the scan/hybrid
    baseline, one ``index`` candidate per eligible value-index probe
    (any prefix of non-positional predicates may be probed, not just
    the first — the remaining predicates commute as pure filters), the
    path-index candidate, and a priced ``naive`` — all sharing the
    plan shapes :mod:`repro.query.compiled` already lowers.
    """
    steps = path.steps
    version = schema.version
    epoch = indexes.epoch if indexes is not None else 0
    forced = _forced_naive(path, version, epoch)
    if forced is not None:
        return [forced], 0
    split: Optional[int] = None
    for index, step in enumerate(steps[:-1]):
        if step.predicates:
            split = index
            break
    prefix = steps if split is None else steps[:split + 1]
    matched = match_schema_nodes(schema.root, prefix)
    pruned = 0
    if prefix[-1].predicates:
        feasible = [node for node in matched
                    if structurally_feasible(node, prefix[-1].predicates)]
        pruned = len(matched) - len(feasible)
        matched = feasible
    if not matched:
        return [CompiledPlan(path, version, "empty", (), split, pruned,
                             index_epoch=epoch)], 0
    base_strategy = "scan" if split is None else "hybrid"
    predicates = prefix[-1].predicates
    candidates = [CompiledPlan(path, version, base_strategy,
                               tuple(matched), split, pruned,
                               index_epoch=epoch)]
    structural_pick = 0
    if indexes is not None and indexes.active:
        if predicates and len(matched) == 1:
            for position, predicate in enumerate(predicates):
                if isinstance(predicate, PositionPredicate):
                    # A probe answers its predicate *first*; value
                    # predicates commute around it, positional ones do
                    # not — stop at the first positional.
                    break
                probe = indexes.plan_probe(matched[0], predicate)
                if probe is None:
                    continue
                rest = predicates[:position] + predicates[position + 1:]
                candidate = CompiledPlan(
                    path, version, "index", tuple(matched), split,
                    pruned, index_epoch=epoch, probe=probe,
                    rest_predicates=rest,
                    index_used=f"value:{probe[1].definition.path}")
                candidates.append(candidate)
                if position == 0:
                    # Structural precedence probed the first predicate.
                    structural_pick = len(candidates) - 1
        elif not predicates and split is None and len(matched) > 1:
            path_index = indexes.path_probe(matched)
            if path_index is not None:
                candidates.append(CompiledPlan(
                    path, version, "index", tuple(matched), split,
                    pruned, index_epoch=epoch,
                    probe=("path", path_index),
                    index_used=f"path:{path_index.definition.path}"))
                structural_pick = len(candidates) - 1
    naive = CompiledPlan(path, version, "naive", (), None, 0,
                         index_epoch=epoch)
    naive.not_lowerable_reason = "naive strategy is interpreted"
    candidates.append(naive)
    return candidates, structural_pick


def _costed_plan(path: Path, schema: "DescriptiveSchema", indexes,
                 stats, block_capacity: int) -> CompiledPlan:
    """Enumerate candidates, price each, take the cheapest."""
    from repro.query.cost import CostModel
    candidates, structural_pick = _candidate_plans(path, schema,
                                                   indexes)
    model = CostModel(stats, block_capacity)
    table = []
    for candidate in candidates:
        estimate = model.price(candidate, schema)
        candidate.cost = estimate
        table.append(estimate)
    best = min(
        range(len(candidates)),
        key=lambda i: (table[i].total,
                       _STRATEGY_RANK[candidates[i].strategy], i))
    plan = candidates[best]
    table[best].chosen = True
    plan.cost_table = tuple(table)
    plan.stats_nodes = tuple(model.consulted)
    plan.stats_epoch = stats.epoch
    if obs.RECORDING:
        registry = obs.REGISTRY
        registry.counter("query.cost.priced").inc()
        registry.counter("query.cost.candidates").inc(len(table))
        registry.counter(f"query.cost.chosen.{plan.strategy}").inc()
        if best != structural_pick:
            registry.counter("query.cost.overrides").inc()
    return plan


def _compile_plan(path: Path, schema: "DescriptiveSchema",
                  indexes=None) -> CompiledPlan:
    """The historical structural planner: fixed precedence
    (index probe on the first predicate > scan/hybrid), no pricing."""
    steps = path.steps
    version = schema.version
    epoch = indexes.epoch if indexes is not None else 0
    forced = _forced_naive(path, version, epoch)
    if forced is not None:
        return forced
    split: Optional[int] = None
    for index, step in enumerate(steps[:-1]):
        if step.predicates:
            split = index
            break
    prefix = steps if split is None else steps[:split + 1]
    matched = match_schema_nodes(schema.root, prefix)
    pruned = 0
    if prefix[-1].predicates:
        feasible = [node for node in matched
                    if structurally_feasible(node, prefix[-1].predicates)]
        pruned = len(matched) - len(feasible)
        matched = feasible
    if not matched:
        return CompiledPlan(path, version, "empty", (), split, pruned,
                            index_epoch=epoch)
    strategy = "scan" if split is None else "hybrid"
    predicates = prefix[-1].predicates
    if indexes is not None and indexes.active:
        if predicates and len(matched) == 1:
            probe = indexes.plan_probe(matched[0], predicates[0])
            if probe is not None:
                return CompiledPlan(
                    path, version, "index", tuple(matched), split,
                    pruned, index_epoch=epoch, probe=probe,
                    rest_predicates=predicates[1:],
                    index_used=f"value:{probe[1].definition.path}")
        elif not predicates and split is None and len(matched) > 1:
            path_index = indexes.path_probe(matched)
            if path_index is not None:
                return CompiledPlan(
                    path, version, "index", tuple(matched), split,
                    pruned, index_epoch=epoch,
                    probe=("path", path_index),
                    index_used=f"path:{path_index.definition.path}")
    return CompiledPlan(path, version, strategy, tuple(matched), split,
                        pruned, index_epoch=epoch)


def _same_decision(fresh: CompiledPlan, stale: CompiledPlan) -> bool:
    """Did a recompile reach the same strategic decision?  Probe mode
    participates because two predicates can probe the *same* index
    differently (eq vs exists)."""
    return (fresh.strategy == stale.strategy
            and fresh.index_used == stale.index_used
            and (fresh.probe[0] if fresh.probe else None)
            == (stale.probe[0] if stale.probe else None))


def _adopt(stale: CompiledPlan, fresh: CompiledPlan,
           drop_executor: bool) -> None:
    """Restamp *stale* in place from an equivalent *fresh* compile."""
    stale.index_epoch = fresh.index_epoch
    stale.stats_epoch = fresh.stats_epoch
    stale.stats_nodes = fresh.stats_nodes
    stale.cost = fresh.cost
    stale.cost_table = fresh.cost_table
    if drop_executor or stale.probe != fresh.probe \
            or stale.rest_predicates != fresh.rest_predicates:
        stale.probe = fresh.probe
        stale.rest_predicates = fresh.rest_predicates
        stale.executor = None


class QueryPlanner:
    """Per-engine plan compiler with an LRU (path → plan) cache.

    A cached plan is handed out only if its schema version still
    matches; a grown schema invalidates exactly the stale entry (the
    paper's claim that the descriptive schema is small and *stable*
    makes invalidations rare in practice).  Two further stamps keep
    cached decisions honest without over-invalidating: the index
    (DDL) epoch and the statistics epoch, both handled by
    recompile-and-compare with in-place restamps when the decision
    stands — and the statistics epoch adds an even cheaper short
    circuit first: a plan none of whose priced schema nodes drifted
    is restamped without recompiling at all.
    """

    def __init__(self, engine, capacity: int = PLAN_CACHE_CAPACITY,
                 policy: str = "cost") -> None:
        if policy not in POLICIES:
            raise ValueError(f"unknown planner policy {policy!r} "
                             f"(expected one of {POLICIES})")
        self._engine = engine
        self.policy = policy
        self._plans: LRUCache[Path, CompiledPlan] = LRUCache(
            capacity, prefix="query.plan_cache")

    def _compile(self, path: Path) -> CompiledPlan:
        engine = self._engine
        return compile_plan(path, engine.schema, engine.indexes,
                            stats=engine.stats,
                            block_capacity=engine.block_capacity,
                            policy=self.policy)

    def compile(self, path: "Path | str") -> CompiledPlan:
        if isinstance(path, str):
            path = cached_parse_path(path)
        engine = self._engine
        version = engine.schema.version
        stats = engine.stats
        epoch = engine.indexes.epoch
        stats_epoch = stats.epoch
        invalidated = False
        fresh: Optional[CompiledPlan] = None
        stale = self._plans.peek(path)
        if stale is not None and stale.schema_version != version:
            self._plans.invalidate(path)
            invalidated = True
        elif stale is not None and stale.index_epoch != epoch:
            # DDL happened since this plan compiled.  Recompile and
            # compare: an unchanged decision is restamped in place (a
            # hit), a changed one is invalidated — so CREATE/DROP
            # INDEX invalidates exactly the plans it affects.  The
            # closure chain is always dropped: the probe may bind a
            # *new* index object.
            fresh = self._compile(path)
            if _same_decision(fresh, stale):
                _adopt(stale, fresh, drop_executor=True)
                fresh = None
            else:
                self._plans.invalidate(path)
                invalidated = True
        elif stale is not None and stale.stats_epoch != stats_epoch:
            # Statistics drifted somewhere since this plan priced its
            # candidates.  Exactly-scoped: if none of the schema nodes
            # this plan consulted drifted, restamp without recompiling
            # (the pricing inputs are unchanged, so the decision is).
            if not stats.drifted_since(stale.stats_nodes,
                                       stale.stats_epoch):
                stale.stats_epoch = stats_epoch
                if obs.RECORDING:
                    obs.REGISTRY.counter(
                        "query.cost.stats_restamps").inc()
            else:
                fresh = self._compile(path)
                if obs.RECORDING:
                    obs.REGISTRY.counter(
                        "query.cost.stats_replans").inc()
                if _same_decision(fresh, stale):
                    # Same decision, same DDL epoch: the probe binds
                    # the same index objects, so a live closure chain
                    # stays valid unless the bindings actually moved.
                    _adopt(stale, fresh, drop_executor=False)
                    fresh = None
                else:
                    self._plans.invalidate(path)
                    invalidated = True
        plan = self._plans.get(path)
        hit = plan is not None
        if plan is None:
            plan = fresh if fresh is not None else self._compile(path)
            self._plans.put(path, plan)
        context = _explain.ACTIVE
        if context is not None:
            context.plan_cache = ("hit" if hit
                                  else "invalidated" if invalidated
                                  else "miss")
            context.strategy = plan.strategy
            context.schema_nodes_scanned = len(plan.scan_nodes)
            context.pruned_schema_nodes = plan.pruned_schema_nodes
            context.index_used = plan.index_used
            context.not_lowerable_reason = plan.not_lowerable_reason
            if plan.cost is not None:
                context.cost_total = plan.cost.total
                context.cost_estimated_rows = plan.cost.output_rows
                context.cost_table = [estimate.as_dict()
                                      for estimate in plan.cost_table]
        if obs.RECORDING:
            # Aggregate plan-cache counters across all engines (each
            # cache also keeps its private per-engine instruments).
            registry = obs.REGISTRY
            registry.counter("query.plan_cache.hits" if hit
                             else "query.plan_cache.misses").inc()
            if invalidated:
                registry.counter("query.plan_cache.invalidations").inc()
        return plan

    def stats(self) -> CacheStats:
        return self._plans.stats()

    def clear(self) -> None:
        self._plans.clear()
        self._plans.reset_stats()
