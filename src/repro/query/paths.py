"""A small path language: the XPath subset the benchmarks exercise.

Grammar (absolute paths only)::

    path      ::= ("/" step | "//" step)+
    step      ::= node-test predicate*
    node-test ::= name | "*" | "@" name | "@*" | "text()"
    predicate ::= "[" integer "]" | "[last()]"
                | "[@" name ("=" string)? "]"
                | "[" name ("=" string)? "]"

``/library/book/title`` selects title elements along child steps,
``//author`` selects all author descendants, ``/library/book/@id``
selects attribute nodes, ``text()`` selects text children, and
predicates filter by position (``book[2]``, per parent context, as in
XPath), by attribute (``book[@lang='en']``) or by child value
(``book[title='Illusions']``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import QueryError


@dataclass(frozen=True)
class PositionPredicate:
    """``[n]`` (1-based) or ``[last()]`` (index is None)."""

    index: int | None

    def __repr__(self) -> str:
        return f"[{self.index}]" if self.index is not None else "[last()]"


@dataclass(frozen=True)
class AttributePredicate:
    """``[@name]`` (existence) or ``[@name='value']``."""

    name: str
    value: str | None = None

    def __repr__(self) -> str:
        if self.value is None:
            return f"[@{self.name}]"
        return f"[@{self.name}='{self.value}']"


@dataclass(frozen=True)
class ChildPredicate:
    """``[name]`` (existence) or ``[name='value']`` on string value."""

    name: str
    value: str | None = None

    def __repr__(self) -> str:
        if self.value is None:
            return f"[{self.name}]"
        return f"[{self.name}='{self.value}']"


Predicate = Union[PositionPredicate, AttributePredicate, ChildPredicate]


@dataclass(frozen=True)
class Step:
    """One location step of a parsed path."""

    axis: str        # "child", "descendant-or-self", "attribute"
    kind: str        # "element", "attribute", "text"
    name: str | None  # None = wildcard
    predicates: tuple[Predicate, ...] = ()

    def matches_name(self, local: str | None) -> bool:
        return self.name is None or self.name == local

    def __repr__(self) -> str:
        slash = "//" if self.axis == "descendant-or-self" else "/"
        if self.kind == "text":
            body = "text()"
        elif self.kind == "attribute":
            body = f"@{self.name or '*'}"
        else:
            body = self.name or "*"
        suffix = "".join(repr(p) for p in self.predicates)
        return f"{slash}{body}{suffix}"


@dataclass(frozen=True)
class Path:
    """A parsed absolute path."""

    steps: tuple[Step, ...]

    def __repr__(self) -> str:
        return "".join(repr(step) for step in self.steps)


def parse_path(text: str) -> Path:
    """Parse the textual path into :class:`Path`."""
    if not text.startswith("/"):
        raise QueryError(f"only absolute paths are supported: {text!r}")
    steps: list[Step] = []
    position = 0
    length = len(text)
    while position < length:
        if text.startswith("//", position):
            axis = "descendant-or-self"
            position += 2
        elif text.startswith("/", position):
            axis = "child"
            position += 1
        else:
            raise QueryError(f"expected '/' at {position} in {text!r}")
        end = position
        depth = 0
        while end < length and (text[end] != "/" or depth > 0):
            if text[end] == "[":
                depth += 1
            elif text[end] == "]":
                depth -= 1
            end += 1
        token = text[position:end]
        position = end
        if not token:
            raise QueryError(f"empty step in {text!r}")
        steps.append(_parse_step(axis, token))
    return Path(tuple(steps))


def _split_predicates(token: str) -> tuple[str, tuple["Predicate", ...]]:
    if "[" not in token:
        return token, ()
    head, _, rest = token.partition("[")
    predicates: list[Predicate] = []
    rest = "[" + rest
    while rest:
        if not rest.startswith("[") or "]" not in rest:
            raise QueryError(f"malformed predicate in {token!r}")
        body, _, rest = rest[1:].partition("]")
        predicates.append(_parse_predicate(body, token))
    return head, tuple(predicates)


def _parse_predicate(body: str, token: str) -> "Predicate":
    body = body.strip()
    if not body:
        raise QueryError(f"empty predicate in {token!r}")
    if body == "last()":
        return PositionPredicate(None)
    if body.lstrip("-").isdigit():
        index = int(body)
        if index < 1:
            raise QueryError(f"positions are 1-based: [{body}]")
        return PositionPredicate(index)
    if "=" in body:
        name_part, _, value_part = body.partition("=")
        name_part = name_part.strip()
        value = _parse_string_literal(value_part.strip(), token)
        if name_part.startswith("@"):
            return AttributePredicate(name_part[1:], value)
        return ChildPredicate(name_part, value)
    if body.startswith("@"):
        return AttributePredicate(body[1:])
    if any(ch in body for ch in "()<>@"):
        raise QueryError(f"unsupported predicate {body!r}")
    return ChildPredicate(body)


def _parse_string_literal(text: str, token: str) -> str:
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    raise QueryError(f"predicate value must be quoted in {token!r}")


def _parse_step(axis: str, token: str) -> Step:
    test, predicates = _split_predicates(token)
    if test == "text()":
        return Step(axis, "text", None, predicates)
    if test.startswith("@"):
        name = test[1:]
        if not name:
            raise QueryError("attribute step needs a name or *")
        return Step(axis, "attribute",
                    None if name == "*" else name, predicates)
    if test == "*":
        return Step(axis, "element", None, predicates)
    if any(ch in test for ch in "[]()@"):
        raise QueryError(f"unsupported step syntax {token!r}")
    if not test:
        raise QueryError(f"missing node test in {token!r}")
    return Step(axis, "element", test, predicates)
