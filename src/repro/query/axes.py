"""XPath 2.0 axes over the Section 5 node model.

The accessors of the paper ("primitive facilities for a query
language") are exactly what these axes are built from: ``parent``,
``children`` and ``attributes`` define the tree, document order
(Section 7) defines ``following``/``preceding``.  Results are returned
in axis order (forward axes in document order, reverse axes in reverse
document order), as XPath requires.
"""

from __future__ import annotations

from typing import Iterator

from repro.xdm.node import AttributeNode, Node
from repro.order.document_order import iter_document_order


def self_axis(node: Node) -> Iterator[Node]:
    yield node


def child_axis(node: Node) -> Iterator[Node]:
    yield from node.children()


def attribute_axis(node: Node) -> Iterator[Node]:
    yield from node.attributes()


def parent_axis(node: Node) -> Iterator[Node]:
    yield from node.parent()


def ancestor_axis(node: Node) -> Iterator[Node]:
    yield from node.ancestors()


def ancestor_or_self_axis(node: Node) -> Iterator[Node]:
    yield node
    yield from node.ancestors()


def descendant_axis(node: Node) -> Iterator[Node]:
    for child in node.children():
        yield child
        yield from descendant_axis(child)


def descendant_or_self_axis(node: Node) -> Iterator[Node]:
    yield node
    yield from descendant_axis(node)


def following_sibling_axis(node: Node) -> Iterator[Node]:
    parent = node.parent_or_none()
    if parent is None or isinstance(node, AttributeNode):
        return
    seen = False
    for sibling in parent.children():
        if seen:
            yield sibling
        elif sibling is node:
            seen = True


def preceding_sibling_axis(node: Node) -> Iterator[Node]:
    """Siblings before the node, in reverse document order."""
    parent = node.parent_or_none()
    if parent is None or isinstance(node, AttributeNode):
        return
    before: list[Node] = []
    for sibling in parent.children():
        if sibling is node:
            break
        before.append(sibling)
    yield from reversed(before)


def following_axis(node: Node) -> Iterator[Node]:
    """Nodes after the node in document order, excluding descendants
    and attributes (per XPath)."""
    root = node.root()
    in_subtree = set(
        n.identifier for n in iter_document_order(node))
    seen_self = False
    for candidate in iter_document_order(root):
        if candidate is node:
            seen_self = True
            continue
        if not seen_self:
            continue
        if candidate.identifier in in_subtree:
            continue
        if isinstance(candidate, AttributeNode):
            continue
        yield candidate


def preceding_axis(node: Node) -> Iterator[Node]:
    """Nodes before the node in document order, excluding ancestors
    and attributes, in reverse document order."""
    root = node.root()
    ancestors = {n.identifier for n in node.ancestors()}
    out: list[Node] = []
    for candidate in iter_document_order(root):
        if candidate is node:
            break
        if candidate.identifier in ancestors:
            continue
        if isinstance(candidate, AttributeNode):
            continue
        out.append(candidate)
    yield from reversed(out)


#: All axes by their XPath names.
AXES = {
    "self": self_axis,
    "child": child_axis,
    "attribute": attribute_axis,
    "parent": parent_axis,
    "ancestor": ancestor_axis,
    "ancestor-or-self": ancestor_or_self_axis,
    "descendant": descendant_axis,
    "descendant-or-self": descendant_or_self_axis,
    "following-sibling": following_sibling_axis,
    "preceding-sibling": preceding_sibling_axis,
    "following": following_axis,
    "preceding": preceding_axis,
}
