"""XPath 2.0 axes over the Section 5 node model and the storage engine.

The accessors of the paper ("primitive facilities for a query
language") are exactly what these axes are built from: ``parent``,
``children`` and ``attributes`` define the tree, document order
(Section 7) defines ``following``/``preceding``.  Results are returned
in axis order (forward axes in document order, reverse axes in reverse
document order), as XPath requires.

``following``/``preceding`` are computed *structurally* — the
following siblings of each ancestor-or-self and their subtrees — so
they stream lazily and never build identifier sets over a
whole-document walk.  The storage-side variants
(:func:`storage_following_axis`, :func:`storage_preceding_axis`) go
further, deciding membership by label comparison alone: ``before`` and
``is_ancestor`` from Section 9.3 answer each structural test in
O(label length) with no tree navigation at all.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterator

from repro.xdm.node import AttributeNode, Node
from repro.order.document_order import (
    iter_subtree_elements,
    iter_subtree_elements_reversed,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.descriptor import NodeDescriptor
    from repro.storage.engine import StorageEngine


def self_axis(node: Node) -> Iterator[Node]:
    yield node


def child_axis(node: Node) -> Iterator[Node]:
    yield from node.children()


def attribute_axis(node: Node) -> Iterator[Node]:
    yield from node.attributes()


def parent_axis(node: Node) -> Iterator[Node]:
    yield from node.parent()


def ancestor_axis(node: Node) -> Iterator[Node]:
    yield from node.ancestors()


def ancestor_or_self_axis(node: Node) -> Iterator[Node]:
    yield node
    yield from node.ancestors()


def descendant_axis(node: Node) -> Iterator[Node]:
    for child in node.children():
        yield child
        yield from descendant_axis(child)


def descendant_or_self_axis(node: Node) -> Iterator[Node]:
    yield node
    yield from descendant_axis(node)


def following_sibling_axis(node: Node) -> Iterator[Node]:
    parent = node.parent_or_none()
    if parent is None or isinstance(node, AttributeNode):
        return
    seen = False
    for sibling in parent.children():
        if seen:
            yield sibling
        elif sibling is node:
            seen = True


def preceding_sibling_axis(node: Node) -> Iterator[Node]:
    """Siblings before the node, in reverse document order."""
    parent = node.parent_or_none()
    if parent is None or isinstance(node, AttributeNode):
        return
    before: list[Node] = []
    for sibling in parent.children():
        if sibling is node:
            break
        before.append(sibling)
    yield from reversed(before)


def following_axis(node: Node) -> Iterator[Node]:
    """Nodes after the node in document order, excluding descendants
    and attributes (per XPath).

    Structural formulation: for the node and each of its ancestors,
    the subtrees of the following siblings, nearest level first.  The
    generator is lazy — the first result costs O(depth + fan-out), not
    a whole-document walk, and no identifier set is ever allocated.
    An attribute context first yields the subtrees of its owner's
    children (everything after the attribute inside the owner element).
    """
    current = node
    if isinstance(node, AttributeNode):
        owner = node.parent_or_none()
        if owner is None:
            return
        for child in owner.children():
            yield from iter_subtree_elements(child)
        current = owner
    while True:
        parent = current.parent_or_none()
        if parent is None:
            return
        seen_self = False
        for sibling in parent.children():
            if seen_self:
                yield from iter_subtree_elements(sibling)
            elif sibling is current:
                seen_self = True
        current = parent


def preceding_axis(node: Node) -> Iterator[Node]:
    """Nodes before the node in document order, excluding ancestors
    and attributes, in reverse document order.

    Structural formulation: for the node and each of its ancestors,
    the subtrees of the preceding siblings in reverse order, nearest
    level first.  Only per-level sibling lists are buffered, never a
    whole-document set.  An attribute's preceding axis equals its
    owner element's (everything before the attribute is the owner, its
    attributes, or nodes before the owner).
    """
    current = node.parent_or_none() if isinstance(node, AttributeNode) \
        else node
    while current is not None:
        parent = current.parent_or_none()
        if parent is None:
            return
        level: list[Node] = []
        for sibling in parent.children():
            if sibling is current:
                break
            level.append(sibling)
        for sibling in reversed(level):
            yield from iter_subtree_elements_reversed(sibling)
        current = parent


# ----------------------------------------------------------------------
# Storage-side following/preceding: pure label comparison (§9.3).


def _doc_order_key(descriptor: "NodeDescriptor") -> bytes:
    return descriptor.nid.sort_key()


def _storage_document_stream(engine: "StorageEngine"
                             ) -> Iterator["NodeDescriptor"]:
    """All non-attribute descriptors in document order, as a lazy
    k-way merge of the per-schema-node block scans keyed on the
    memoized packed labels."""
    streams = [engine.scan_schema_node(schema_node)
               for schema_node in engine.schema.iter_nodes()
               if schema_node.node_type != "attribute"]
    return heapq.merge(*streams, key=_doc_order_key)


def storage_following_axis(engine: "StorageEngine",
                           descriptor: "NodeDescriptor"
                           ) -> Iterator["NodeDescriptor"]:
    """``following::`` over descriptors, decided by packed label keys
    alone: a bytewise ``<`` places x after the context and a prefix
    test (``startswith``) excludes its descendants — each test is one
    C-level bytes operation, with no navigation and no node sets."""
    context_key = descriptor.nid.sort_key()
    for candidate in _storage_document_stream(engine):
        candidate_key = candidate.nid.sort_key()
        if not context_key < candidate_key:
            continue  # at or before the context node
        if candidate_key.startswith(context_key):
            continue  # a descendant of the context
        yield candidate


def storage_preceding_axis(engine: "StorageEngine",
                           descriptor: "NodeDescriptor"
                           ) -> Iterator["NodeDescriptor"]:
    """``preceding::`` over descriptors by packed-key comparison, in
    reverse document order.  The merged stream is document-ordered, so
    the scan stops at the context key; only the (necessarily
    materialized, because the axis is reversed) result list is
    buffered — ancestors are excluded by a key prefix test, not by set
    membership."""
    context_key = descriptor.nid.sort_key()
    out: list["NodeDescriptor"] = []
    for candidate in _storage_document_stream(engine):
        candidate_key = candidate.nid.sort_key()
        if not candidate_key < context_key:
            break  # reached the context: nothing later can precede it
        if context_key.startswith(candidate_key):
            continue  # an ancestor of the context
        out.append(candidate)
    yield from reversed(out)


#: All axes by their XPath names.
AXES = {
    "self": self_axis,
    "child": child_axis,
    "attribute": attribute_axis,
    "parent": parent_axis,
    "ancestor": ancestor_axis,
    "ancestor-or-self": ancestor_or_self_axis,
    "descendant": descendant_axis,
    "descendant-or-self": descendant_or_self_axis,
    "following-sibling": following_sibling_axis,
    "preceding-sibling": preceding_sibling_axis,
    "following": following_axis,
    "preceding": preceding_axis,
}

#: Storage-side axes by name (engine + descriptor signature).
STORAGE_AXES = {
    "following": storage_following_axis,
    "preceding": storage_preceding_axis,
}
