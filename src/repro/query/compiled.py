"""Closure-chain lowering of cached query plans.

A :class:`~repro.query.planner.CompiledPlan` records a *decision*
(strategy, schema nodes, probe); executing it still re-dispatches on
that decision every call — string compares on the strategy, isinstance
tests per predicate, generator hops per block.  This module lowers a
plan **once** — on its first cached execution — into a
:class:`CompiledExecutor`: a source closure that materializes the
initial descriptor list plus a chain of stage closures, each pre-bound
to exactly the schema nodes, attribute slots, index probes and
residual predicates it needs.  Repeat executions then run the chain
with zero per-step strategy dispatch.

The lowering is *schema-bound, not block-bound*: closures capture
:class:`~repro.storage.dschema.SchemaNode` objects and walk their live
``first_block`` chains at run time, so pure data mutations (inserts,
deletes, value updates, block splits) are picked up for free — the
same liveness argument the interpreted scan makes.  Consistency with
DDL and schema growth rides on the existing plan-cache invalidation:
the cache drops a plan when the schema version moved (the executor
dies with it) and nulls :attr:`CompiledPlan.executor` when a DDL
restamp keeps the plan, forcing a re-lower against the fresh probe
bindings.

Stage specialization falls back — per stage, not per plan — to the
shared interpreted kernel whenever the specialized form could diverge
from it:

* positional predicates on suffix steps regroup per context, which a
  flat sweep cannot reproduce (``navigate-fallback``);
* parent-filter and ancestor-walk sweeps are only emitted when the
  *schema-level* context set is ancestor-free, because only then is
  the interpreted per-context output globally document-ordered and
  duplicate-free (two ancestor-free descriptors have disjoint
  subtrees, so their child/descendant results never interleave or
  overlap);
* attribute steps always mirror the per-context pointer walk, since
  ``attributes()`` order is schema-children order, which a label
  sweep does not reproduce.

The correctness contract — closure-chain results are nid-identical to
the interpreted plan for every strategy — is what
``tests/test_compiled_parity.py`` pins down.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Optional

from repro import obs
from repro.query.paths import (
    AttributePredicate,
    ChildPredicate,
    PositionPredicate,
    Step,
)
from repro.query.planner import (
    NOT_LOWERABLE,
    CompiledPlan,
    _doc_order_key,
    _schema_accepts,
    _schema_candidates,
)
from repro.storage.dschema import SchemaNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.explain import QueryExplain
    from repro.query.engine import StorageQueryEngine
    from repro.storage.descriptor import NodeDescriptor

#: Stage signature: descriptor list in, descriptor list out.
Stage = Callable[[list], list]


class CompiledExecutor:
    """A lowered plan: one source closure + a chain of stage closures.

    :meth:`run` is the hot path — no timing, no dispatch, just the
    chain.  :meth:`run_explained` runs the same chain with a
    ``perf_counter_ns`` fence around every stage and reports the
    per-stage timings into the active EXPLAIN record.
    """

    __slots__ = ("source_name", "source", "stages")

    def __init__(self, source_name: str, source: Callable[[], list],
                 stages: "list[tuple[str, Stage]]") -> None:
        self.source_name = source_name
        self.source = source
        self.stages = tuple(stages)

    def run(self, queries: "StorageQueryEngine") -> list:
        result = self.source()
        for _name, stage in self.stages:
            result = stage(result)
        return result

    def run_explained(self, queries: "StorageQueryEngine",
                      record: "QueryExplain") -> list:
        timings: list[tuple[str, int]] = []
        started = time.perf_counter_ns()
        result = self.source()
        timings.append((self.source_name,
                        time.perf_counter_ns() - started))
        record.nodes_visited += len(result)
        for name, stage in self.stages:
            started = time.perf_counter_ns()
            result = stage(result)
            timings.append((name, time.perf_counter_ns() - started))
            if name.startswith("step"):
                # Specialized step stages bypass the kernel's ACTIVE
                # accounting; the fallback stage counts through it.
                record.axis_steps += 1
                record.nodes_visited += len(result)
        record.compiled = True
        record.stage_ns = timings
        return result

    def __repr__(self) -> str:
        names = " | ".join([self.source_name]
                           + [name for name, _ in self.stages])
        return f"CompiledExecutor({names})"


# ----------------------------------------------------------------------
# Lowering entry point.


def lower(plan: CompiledPlan, queries: "StorageQueryEngine"):
    """Lower *plan* into a :class:`CompiledExecutor` (or the
    ``NOT_LOWERABLE`` sentinel for shapes the lowering declines).

    Called once per cached plan; the nanoseconds spent here are
    surfaced through the ``query.compile.ns`` counter so the benchmark
    harness can attribute them.
    """
    if not obs.RECORDING:
        return _lower(plan, queries)
    started = time.perf_counter_ns()
    executor = _lower(plan, queries)
    registry = obs.REGISTRY
    registry.counter("query.compile.ns").inc(
        time.perf_counter_ns() - started)
    registry.counter("query.plans.lowered" if executor is not NOT_LOWERABLE
                     else "query.plans.not_lowerable").inc()
    return executor


def _lower(plan: CompiledPlan, queries: "StorageQueryEngine"):
    strategy = plan.strategy
    if strategy == "empty":
        return CompiledExecutor("empty", lambda: [], [])
    if strategy == "naive":
        path = plan.path
        return CompiledExecutor(
            "navigate", lambda: queries.evaluate_naive(path), [])
    steps = plan.path.steps
    stages: list[tuple[str, Stage]] = []
    if strategy == "index":
        source_name, source = _probe_source(plan)
        # Residual predicates of the probed step: the probe result's
        # schema nodes are not pinned by the planner, so these stay
        # generic per-descriptor tests (they are rare — everything
        # after the decisive predicate).
        for predicate in plan.rest_predicates:
            stages.append(_generic_predicate_stage(queries, predicate))
    elif strategy in ("scan", "hybrid"):
        source_name, source = _scan_source(plan.scan_nodes)
        scan_step = (steps[-1] if plan.split is None
                     else steps[plan.split])
        for predicate in scan_step.predicates:
            stages.append(_predicate_stage(queries, plan.scan_nodes,
                                           predicate))
    else:  # future strategies stay interpreted until lowered here
        plan.not_lowerable_reason = (
            f"no closure lowering for strategy {strategy!r}")
        return NOT_LOWERABLE
    if plan.split is not None:
        stages.extend(_suffix_stages(queries, plan.scan_nodes,
                                     steps[plan.split + 1:]))
    return CompiledExecutor(source_name, source, stages)


# ----------------------------------------------------------------------
# Sources.


def _sweep_blocks(schema_node: SchemaNode, out: list) -> None:
    """Append every instance of *schema_node* to *out* in document
    order, one whole block at a time (the batched navigation kernel)."""
    block = schema_node.first_block
    while block is not None:
        block.extend_in_order(out)
        block = block.next_block


def _scan_source(scan_nodes: "tuple[SchemaNode, ...]"
                 ) -> tuple[str, Callable[[], list]]:
    if len(scan_nodes) == 1:
        schema_node = scan_nodes[0]

        def source() -> list:
            out: list = []
            _sweep_blocks(schema_node, out)
            return out

        return f"scan[{schema_node.path or '#document'}]", source

    def merged_source() -> list:
        out: list = []
        boundaries: list[int] = []
        for schema_node in scan_nodes:
            boundaries.append(len(out))
            _sweep_blocks(schema_node, out)
        # Each per-schema-node sweep is a document-order run, so the
        # concatenation is globally ordered iff every run boundary is:
        # last-of-run-i <= first-of-run-i+1.  Only when a boundary is
        # out of order does the merge need a sort (Timsort recognizes
        # the runs, so even that is one linear galloping merge).
        size = len(out)
        for boundary in boundaries[1:]:
            if (0 < boundary < size
                    and (out[boundary].nid.sort_key()
                         < out[boundary - 1].nid.sort_key())):
                out.sort(key=_doc_order_key)
                break
        return out

    return f"scan-merge[{len(scan_nodes)}]", merged_source


def _probe_source(plan: CompiledPlan) -> tuple[str, Callable[[], list]]:
    probe = plan.probe
    assert probe is not None
    if probe[0] == "path":
        return "probe[path]", probe[1].probe
    mode, index, key, via_parent = probe
    if mode == "eq":
        def fetch() -> list:
            return index.probe_eq(key)
    else:
        fetch = index.probe_exists
    if not via_parent:
        return f"probe[{mode}]", fetch

    def parent_source() -> list:
        # An element-value index posts the children; the predicate
        # selects their parents (deduplicated, document order
        # preserved — equal-depth paths keep parent order aligned
        # with child order).
        seen: set[bytes] = set()
        out: list = []
        for owner in fetch():
            parent = owner.parent
            if parent is None:  # pragma: no cover - defensive
                continue
            parent_key = parent.nid.sort_key()
            if parent_key not in seen:
                seen.add(parent_key)
                out.append(parent)
        return out

    return f"probe[{mode}/parent]", parent_source


# ----------------------------------------------------------------------
# Predicate stages over a known schema-node set.


def _generic_predicate_stage(queries: "StorageQueryEngine",
                             predicate) -> tuple[str, Stage]:
    """The unspecialized per-descriptor test (probe results, whose
    schema nodes the plan does not pin)."""
    if isinstance(predicate, PositionPredicate):
        def positional(descriptors: list) -> list:
            return queries._apply_final_predicates(descriptors,
                                                   (predicate,))
        return "predicate[pos]", positional

    def filtered(descriptors: list) -> list:
        return [descriptor for descriptor in descriptors
                if queries._test_holds(descriptor, predicate)]
    return "predicate[test]", filtered


def _predicate_stage(queries: "StorageQueryEngine",
                     schema_nodes, predicate) -> tuple[str, Stage]:
    """One predicate lowered against the schema nodes the descriptors
    are known to instantiate."""
    if isinstance(predicate, PositionPredicate):
        # Positional grouping over a flat scan is exactly what the
        # interpreted _apply_final_predicates does; keep it shared.
        def positional(descriptors: list) -> list:
            return queries._apply_final_predicates(descriptors,
                                                   (predicate,))
        return "predicate[pos]", positional
    if isinstance(predicate, AttributePredicate):
        return _attribute_predicate_stage(schema_nodes, predicate)
    if isinstance(predicate, ChildPredicate):
        return _child_predicate_stage(queries, schema_nodes, predicate)
    raise TypeError(f"unknown predicate {predicate!r}")


def _attribute_predicate_stage(schema_nodes, predicate: AttributePredicate
                               ) -> tuple[str, Stage]:
    # Per schema node: the attribute schema-child slots whose local
    # name matches, in schema-children order — the FIRST slot holding
    # an instance decides, mirroring predicate_holds over the
    # attributes() order.
    slots: dict[SchemaNode, tuple[int, ...]] = {}
    for schema_node in schema_nodes:
        slots[schema_node] = tuple(
            index for index, child in enumerate(schema_node.children)
            if child.node_type == "attribute"
            and child.name.local == predicate.name)
    value = predicate.value

    def stage(descriptors: list) -> list:
        out: list = []
        for descriptor in descriptors:
            lookup = descriptor.children_by_schema.get
            for index in slots[descriptor.schema_node]:
                attribute = lookup(index)
                if attribute is not None:
                    if value is None or (attribute.value or "") == value:
                        out.append(descriptor)
                    break
        return out

    return f"predicate[@{predicate.name}]", stage


def _child_predicate_stage(queries: "StorageQueryEngine", schema_nodes,
                           predicate: ChildPredicate
                           ) -> tuple[str, Stage]:
    # Per schema node: the element schema children whose local name
    # matches, as (slot, schema child) pairs — existence is answered by
    # the stored first-child pointer alone; a value test walks the
    # sibling chain from it (children_via_schema_pointer, inlined).
    targets: dict[SchemaNode, tuple[tuple[int, SchemaNode], ...]] = {}
    for schema_node in schema_nodes:
        targets[schema_node] = tuple(
            (index, child)
            for index, child in enumerate(schema_node.children)
            if child.node_type == "element"
            and child.name is not None
            and child.name.local == predicate.name)
    value = predicate.value
    string_value = queries.engine.string_value

    if value is None:
        def exists_stage(descriptors: list) -> list:
            out: list = []
            for descriptor in descriptors:
                lookup = descriptor.children_by_schema.get
                for index, _child in targets[descriptor.schema_node]:
                    if lookup(index) is not None:
                        out.append(descriptor)
                        break
            return out
        return f"predicate[{predicate.name}]", exists_stage

    def value_stage(descriptors: list) -> list:
        out: list = []
        for descriptor in descriptors:
            lookup = descriptor.children_by_schema.get
            for index, child_schema in targets[descriptor.schema_node]:
                node = lookup(index)
                matched = False
                while node is not None:
                    if (node.schema_node is child_schema
                            and string_value(node) == value):
                        matched = True
                        break
                    node = node.right_sibling
                if matched:
                    out.append(descriptor)
                    break
        return out

    return f"predicate[{predicate.name}=…]", value_stage


# ----------------------------------------------------------------------
# Suffix step stages (hybrid / index plans with a split).


def _match_step(schema_nodes: "list[SchemaNode]",
                step: Step) -> "list[SchemaNode]":
    bucket: list[SchemaNode] = []
    seen: set[SchemaNode] = set()
    for schema_node in schema_nodes:
        for candidate in _schema_candidates(schema_node, step):
            if candidate not in seen and _schema_accepts(candidate,
                                                         step):
                seen.add(candidate)
                bucket.append(candidate)
    return bucket


def _ancestor_free(schema_nodes: "list[SchemaNode]") -> bool:
    """No member is a schema ancestor of another.  Because a schema
    node's path is unique (§9.1), descriptor-level ancestor relations
    imply schema-level ones — so a schema-level ancestor-free set
    guarantees the instance context sets are ancestor-free too."""
    members = set(schema_nodes)
    for schema_node in schema_nodes:
        ancestor = schema_node.parent
        while ancestor is not None:
            if ancestor in members:
                return False
            ancestor = ancestor.parent
    return True


def _suffix_stages(queries: "StorageQueryEngine", context_nodes,
                   steps: "tuple[Step, ...]"
                   ) -> "list[tuple[str, Stage]]":
    stages: list[tuple[str, Stage]] = []
    current: list[SchemaNode] = list(context_nodes)
    for position, step in enumerate(steps):
        destination = _match_step(current, step)
        if not destination:
            stages.append(("step-empty", lambda _descriptors: []))
            return stages
        positional = any(isinstance(p, PositionPredicate)
                         for p in step.predicates)
        if positional or not _ancestor_free(current):
            # Positional predicates regroup per context node, and
            # ancestor-related contexts interleave child/descendant
            # results — both need the per-context interpreted kernel.
            remaining = steps[position:]

            def fallback(descriptors: list,
                         _remaining=remaining) -> list:
                return queries._navigate_steps(descriptors, _remaining)

            stages.append(("navigate-fallback", fallback))
            return stages
        if step.kind == "attribute":
            stages.append(_attribute_step_stage(current, step))
        elif step.axis == "child":
            stages.append(_child_step_stage(current, destination, step))
        else:
            stages.append(_descendant_step_stage(current, destination,
                                                 step))
        for predicate in step.predicates:
            stages.append(_predicate_stage(queries, destination,
                                           predicate))
        current = destination
    return stages


def _attribute_step_stage(context_nodes: "list[SchemaNode]",
                          step: Step) -> tuple[str, Stage]:
    # attributes() order is schema-children order, which a label sweep
    # does not reproduce — mirror the per-context pointer walk with the
    # matching slots resolved per context schema node.
    slots: dict[SchemaNode, tuple[int, ...]] = {}
    for schema_node in context_nodes:
        slots[schema_node] = tuple(
            index for index, child in enumerate(schema_node.children)
            if child.node_type == "attribute"
            and step.matches_name(child.name.local))

    def stage(descriptors: list) -> list:
        out: list = []
        for descriptor in descriptors:
            lookup = descriptor.children_by_schema.get
            for index in slots[descriptor.schema_node]:
                attribute = lookup(index)
                if attribute is not None:
                    out.append(attribute)
        return out

    return f"step[@{step.name or '*'}]", stage


def _child_step_stage(context_nodes: "list[SchemaNode]",
                      destination: "list[SchemaNode]",
                      step: Step) -> tuple[str, Stage]:
    # Sweep the destination schema nodes' blocks once for the whole
    # context set and keep the descriptors whose parent is a context —
    # valid (order- and duplicate-exact vs. the per-context kernel)
    # because the context set is ancestor-free.
    dest_nodes = tuple(destination)
    multi = len(dest_nodes) > 1

    def stage(descriptors: list) -> list:
        if not descriptors:
            return []
        contexts = set(descriptors)
        sweep: list = []
        for schema_node in dest_nodes:
            _sweep_blocks(schema_node, sweep)
        out = [descriptor for descriptor in sweep
               if descriptor.parent in contexts]
        if multi:
            out.sort(key=_doc_order_key)
        return out

    return f"step[{step.name or step.kind}]", stage


def _descendant_step_stage(context_nodes: "list[SchemaNode]",
                           destination: "list[SchemaNode]",
                           step: Step) -> tuple[str, Stage]:
    # Per destination schema node there is exactly ONE context schema
    # node on its root path (the context set is ancestor-free), at a
    # fixed depth distance — so membership under the context set is an
    # ancestor-pointer walk of pre-computed length, not a label scan.
    members = set(context_nodes)
    lowered: list[tuple[SchemaNode, int]] = []
    for schema_node in destination:
        delta = 0
        node: Optional[SchemaNode] = schema_node
        while node is not None and node not in members:
            node = node.parent
            delta += 1
        lowered.append((schema_node, delta))
    multi = len(lowered) > 1

    def stage(descriptors: list) -> list:
        if not descriptors:
            return []
        contexts = set(descriptors)
        out: list = []
        for schema_node, delta in lowered:
            sweep: list = []
            _sweep_blocks(schema_node, sweep)
            if delta == 0:
                out.extend(descriptor for descriptor in sweep
                           if descriptor in contexts)
                continue
            for descriptor in sweep:
                ancestor = descriptor
                for _ in range(delta):
                    ancestor = ancestor.parent
                    if ancestor is None:  # pragma: no cover - defensive
                        break
                if ancestor is not None and ancestor in contexts:
                    out.append(descriptor)
        if multi:
            out.sort(key=_doc_order_key)
        return out

    return f"step[//{step.name or step.kind}]", stage
