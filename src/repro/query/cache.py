"""Caches for the query layer: parsed paths and compiled plans.

Two caches keep repeated queries off the slow paths:

* a process-wide LRU **parse cache** — a path string compiles to a
  :class:`~repro.query.paths.Path` exactly once, because parsing is
  pure (the same text always yields the same frozen ``Path``);
* a per-engine LRU **plan cache** (used by
  :class:`~repro.query.planner.QueryPlanner`) — compiled plans are
  keyed by ``Path`` and stamped with **three** freshness marks, each
  invalidating exactly what it must:

  - the descriptive-schema *version*: a grown schema can change what
    a path matches, so the stale plan is dropped (Section 9.1: a new
    document path means a new schema path; nothing else can change
    the match);
  - the index (DDL) *epoch*: CREATE/DROP INDEX triggers a
    recompile-and-compare — an unchanged decision is restamped in
    place, a changed one invalidated;
  - the statistics *epoch*
    (:class:`~repro.obs.statistics.StatisticsCollector`): when
    collected statistics drift past the relative threshold, plans
    none of whose priced schema nodes drifted are restamped in place
    without even recompiling; drifted ones are re-priced and kept if
    the cost-based decision stands.

Both count through the observability layer's instruments
(:mod:`repro.obs.metrics`) — one counter mechanism for the whole
repository.  :class:`CacheStats` and :func:`parse_cache_stats` remain
as thin snapshot views over those instruments; the process-wide parse
cache additionally registers its counters in the global
:data:`repro.obs.REGISTRY` (under ``query.parse_cache.*``) so they
appear in every metrics snapshot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, Iterator, Optional, TypeVar

from repro import obs
from repro.obs import explain as _explain
from repro.obs.metrics import Counter, MetricsRegistry
from repro.query.paths import Path, parse_path

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Default capacity of the process-wide parse cache.
PARSE_CACHE_CAPACITY = 512

#: Default capacity of a per-engine plan cache.
PLAN_CACHE_CAPACITY = 256

#: Sentinel distinguishing "missing" from a cached None.
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    invalidations: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache(Generic[K, V]):
    """A counting least-recently-used map.

    ``get`` refreshes recency; ``put`` evicts the coldest entry once
    the capacity is exceeded.  ``invalidations`` is bumped by callers
    through :meth:`invalidate` when an entry is discarded for being
    stale rather than cold (the plan cache's schema-version check).

    Thread-safe: the session layer shares one engine (and its plan
    cache) across concurrent readers of a snapshot, and the
    process-wide parse cache is hit from every worker thread, so every
    entry operation runs under an internal lock — a lookup can no
    longer race an eviction into a ``KeyError`` on ``move_to_end``.

    Counters are :class:`~repro.obs.metrics.Counter` instruments.  Pass
    *registry* and *prefix* to register them (``<prefix>.hits`` …) in a
    shared :class:`MetricsRegistry` — done by the process-wide parse
    cache; per-engine plan caches keep private instruments so one
    engine's hit rate is not another's.
    """

    __slots__ = ("capacity", "_entries", "_lock", "_hits", "_misses",
                 "_invalidations", "_evictions")

    def __init__(self, capacity: int,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = "cache") -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        make = registry.counter if registry is not None \
            else (lambda name: Counter(name))
        self._hits = make(f"{prefix}.hits")
        self._misses = make(f"{prefix}.misses")
        self._invalidations = make(f"{prefix}.invalidations")
        self._evictions = make(f"{prefix}.evictions")

    # Counter values under the historical attribute names.
    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def get(self, key: K) -> Optional[V]:
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry  # type: ignore[return-value]

    def peek(self, key: K) -> Optional[V]:
        """Read without touching recency or the hit/miss counters
        (used for staleness checks before the counted ``get``)."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            return None if entry is _MISSING else entry  # type: ignore

    def put(self, key: K, value: V) -> None:
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = value
            if len(entries) > self.capacity:
                entries.popitem(last=False)
                self._evictions.inc()

    def invalidate(self, key: K) -> None:
        """Drop a stale entry (counted separately from evictions)."""
        with self._lock:
            if self._entries.pop(key, _MISSING) is not _MISSING:
                self._invalidations.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        self._hits.reset()
        self._misses.reset()
        self._invalidations.reset()
        self._evictions.reset()

    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses,
                          invalidations=self.invalidations,
                          evictions=self.evictions,
                          size=len(self._entries),
                          capacity=self.capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        with self._lock:
            return iter(list(self._entries))


# ----------------------------------------------------------------------
# The process-wide parse cache.  One per process, so its counters live
# in the global metrics registry (they show up in `repro stats` and the
# benchmark reports as `query.parse_cache.*`).

_parse_cache: LRUCache[str, Path] = LRUCache(
    PARSE_CACHE_CAPACITY, registry=obs.REGISTRY,
    prefix="query.parse_cache")


def cached_parse_path(text: str) -> Path:
    """:func:`~repro.query.paths.parse_path` through the LRU cache.

    Parsing is pure, so one cache serves every engine in the process.
    Parse errors are not cached (they raise before the ``put``).
    """
    path = _parse_cache.get(text)
    context = _explain.ACTIVE
    if path is None:
        path = parse_path(text)
        _parse_cache.put(text, path)
        if context is not None:
            context.parse_cache = "miss"
    elif context is not None:
        context.parse_cache = "hit"
    return path


def parse_cache_stats() -> CacheStats:
    """Counters of the process-wide parse cache."""
    return _parse_cache.stats()


def clear_parse_cache() -> None:
    """Empty the parse cache and zero its counters (test isolation)."""
    _parse_cache.clear()
    _parse_cache.reset_stats()
