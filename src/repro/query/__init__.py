"""Path queries over both the formal model and the storage engine."""

from repro.query.axes import AXES
from repro.query.engine import StorageQueryEngine, evaluate_tree
from repro.query.paths import Path, Step, parse_path

__all__ = [
    "AXES",
    "Path",
    "Step",
    "StorageQueryEngine",
    "evaluate_tree",
    "parse_path",
]
