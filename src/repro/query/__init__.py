"""Path queries over both the formal model and the storage engine."""

from repro.query.axes import (
    AXES,
    STORAGE_AXES,
    storage_following_axis,
    storage_preceding_axis,
)
from repro.query.cache import (
    CacheStats,
    LRUCache,
    cached_parse_path,
    clear_parse_cache,
    parse_cache_stats,
)
from repro.query.engine import (
    StorageQueryEngine,
    evaluate_store,
    evaluate_tree,
    navigate_steps,
)
from repro.query.cost import CostEstimate, CostModel
from repro.query.paths import Path, Step, parse_path
from repro.query.planner import (
    POLICIES,
    CompiledPlan,
    QueryPlanner,
    compile_plan,
    match_schema_nodes,
)

__all__ = [
    "AXES",
    "CacheStats",
    "CompiledPlan",
    "CostEstimate",
    "CostModel",
    "LRUCache",
    "POLICIES",
    "Path",
    "QueryPlanner",
    "STORAGE_AXES",
    "Step",
    "StorageQueryEngine",
    "cached_parse_path",
    "clear_parse_cache",
    "compile_plan",
    "evaluate_store",
    "evaluate_tree",
    "navigate_steps",
    "match_schema_nodes",
    "parse_cache_stats",
    "parse_path",
    "storage_following_axis",
    "storage_preceding_axis",
]
