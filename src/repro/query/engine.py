"""Path evaluation over both representations of a document.

Three evaluators answer the same path queries:

* :func:`evaluate_tree` — over the formal node model, by per-step
  traversal (the semantics reference);
* :meth:`StorageQueryEngine.evaluate_naive` — over the Sedna storage,
  also by traversal (descriptor-chasing baseline);
* :meth:`StorageQueryEngine.evaluate_schema_driven` — Sedna's trick:
  match the path against the *descriptive schema* first, then scan the
  blocks of only the matching schema nodes, in document order, with no
  per-document-node navigation at all.

The three agreeing node-for-node is an integration test of the whole
Section 9 layer against the Section 5/6 model; the speed difference is
the XP benchmark.
"""

from __future__ import annotations

from typing import Iterator

from repro.xdm.node import AttributeNode, ElementNode, Node, TextNode
from repro.storage.dschema import SchemaNode
from repro.storage.engine import NodeDescriptor, StorageEngine
from repro.query.cache import (
    PLAN_CACHE_CAPACITY,
    cached_parse_path,
    parse_cache_stats,
)
from repro.query.planner import (
    CompiledPlan,
    QueryPlanner,
    compile_plan,
    match_schema_nodes,
)
from repro.query.paths import (
    AttributePredicate,
    ChildPredicate,
    Path,
    PositionPredicate,
    Step,
    parse_path,
)


def _as_path(path: "Path | str") -> Path:
    return cached_parse_path(path) if isinstance(path, str) else path


def _as_path_uncached(path: "Path | str") -> Path:
    """Parse afresh — for the baseline evaluators, which model the
    engine *without* the caching layer and must not borrow its parse
    cache (the XP benchmark compares them against :meth:`evaluate`)."""
    return parse_path(path) if isinstance(path, str) else path


# ----------------------------------------------------------------------
# Evaluation over the formal node model


def evaluate_tree(root: Node, path: "Path | str") -> list[Node]:
    """Evaluate *path* against a tree; *root* is the document node (or
    the element standing in for it).

    Predicates are applied per context node, so ``book[2]`` means "the
    second book child of each parent", as in XPath.
    """
    path = _as_path(path)
    current: list[Node] = [root]
    for step in path.steps:
        bucket: list[Node] = []
        seen: set[int] = set()
        for node in current:
            matched = [candidate
                       for candidate in _step_candidates(node, step)
                       if _step_accepts(candidate, step)]
            for candidate in _apply_tree_predicates(matched,
                                                    step.predicates):
                if candidate.identifier not in seen:
                    seen.add(candidate.identifier)
                    bucket.append(candidate)
        current = bucket
    return current


def _apply_tree_predicates(candidates: list[Node],
                           predicates) -> list[Node]:
    for predicate in predicates:
        if isinstance(predicate, PositionPredicate):
            if predicate.index is None:
                candidates = candidates[-1:]
            elif predicate.index <= len(candidates):
                candidates = [candidates[predicate.index - 1]]
            else:
                candidates = []
        else:
            candidates = [node for node in candidates
                          if _tree_test_holds(node, predicate)]
    return candidates


def _tree_test_holds(node: Node, predicate) -> bool:
    if isinstance(predicate, AttributePredicate):
        for attribute in node.attributes():
            if attribute.node_name().head().local == predicate.name:
                return (predicate.value is None
                        or attribute.string_value() == predicate.value)
        return False
    if isinstance(predicate, ChildPredicate):
        for child in node.children():
            names = child.node_name()
            if names and names.head().local == predicate.name:
                if (predicate.value is None
                        or child.string_value() == predicate.value):
                    return True
        return False
    raise TypeError(f"unknown predicate {predicate!r}")


def _step_candidates(node: Node, step: Step) -> Iterator[Node]:
    if step.axis == "child":
        if step.kind == "attribute":
            yield from node.attributes()
        else:
            yield from node.children()
    else:  # descendant-or-self
        yield from _descendants(node)


def _descendants(node: Node) -> Iterator[Node]:
    yield node
    for attribute in node.attributes():
        yield attribute
    for child in node.children():
        yield from _descendants(child)


def _step_accepts(node: Node, step: Step) -> bool:
    if step.kind == "text":
        return isinstance(node, TextNode)
    if step.kind == "attribute":
        if not isinstance(node, AttributeNode):
            return False
        return step.matches_name(node.name.local)
    if not isinstance(node, ElementNode):
        return False
    return step.matches_name(node.name.local)


# ----------------------------------------------------------------------
# Evaluation over the storage engine


class StorageQueryEngine:
    """Path queries over a loaded :class:`StorageEngine`.

    Beyond the two evaluators, the engine owns a
    :class:`~repro.query.planner.QueryPlanner` whose plan cache makes
    repeated queries skip parsing and schema matching entirely:
    :meth:`evaluate` is the cached entry point, and :meth:`cache_stats`
    surfaces hit/miss/invalidation counters next to the storage
    engine's split/insert instrumentation.
    """

    def __init__(self, engine: StorageEngine,
                 plan_cache_capacity: int = PLAN_CACHE_CAPACITY) -> None:
        self._engine = engine
        self._planner = QueryPlanner(engine, plan_cache_capacity)

    @property
    def engine(self) -> StorageEngine:
        return self._engine

    # -- compiled-plan entry points -------------------------------------

    def compile(self, path: "Path | str") -> CompiledPlan:
        """The cached compiled plan for *path* (compiling on miss)."""
        return self._planner.compile(path)

    def evaluate(self, path: "Path | str") -> list[NodeDescriptor]:
        """Evaluate through the plan cache — the hot entry point."""
        return self._planner.compile(path).execute(self)

    def cache_stats(self) -> dict[str, float]:
        """Plan- and parse-cache counters for the benchmark harness."""
        plan = self._planner.stats()
        parse = parse_cache_stats()
        return {
            "plan_hits": plan.hits,
            "plan_misses": plan.misses,
            "plan_invalidations": plan.invalidations,
            "plan_evictions": plan.evictions,
            "plan_size": plan.size,
            "plan_hit_rate": plan.hit_rate,
            "parse_hits": parse.hits,
            "parse_misses": parse.misses,
            "parse_hit_rate": parse.hit_rate,
        }

    def clear_caches(self) -> None:
        """Drop the plan cache and zero its counters."""
        self._planner.clear()

    # -- baseline: navigate descriptors --------------------------------

    def evaluate_naive(self, path: "Path | str") -> list[NodeDescriptor]:
        path = _as_path_uncached(path)
        engine = self._engine
        if engine.document is None:
            return []
        return self._navigate_steps([engine.document], path.steps)

    def _navigate_steps(self, current: list[NodeDescriptor],
                        steps: "tuple[Step, ...]"
                        ) -> list[NodeDescriptor]:
        """Per-step navigation from *current* context descriptors.

        Deduplication is keyed on the stable label symbols (labels are
        unique per document, Section 9.3), not on transient ``id()``s.
        """
        for step in steps:
            bucket: list[NodeDescriptor] = []
            seen: set[tuple[int, ...]] = set()
            for descriptor in current:
                matched = [candidate
                           for candidate in self._step_candidates(
                               descriptor, step)
                           if self._step_accepts(candidate, step)]
                for candidate in self._apply_predicates(
                        matched, step.predicates):
                    key = candidate.nid.symbols()
                    if key not in seen:
                        seen.add(key)
                        bucket.append(candidate)
            current = bucket
        return current

    def _apply_predicates(self, candidates: list[NodeDescriptor],
                          predicates) -> list[NodeDescriptor]:
        for predicate in predicates:
            if isinstance(predicate, PositionPredicate):
                if predicate.index is None:
                    candidates = candidates[-1:]
                elif predicate.index <= len(candidates):
                    candidates = [candidates[predicate.index - 1]]
                else:
                    candidates = []
            else:
                candidates = [descriptor for descriptor in candidates
                              if self._test_holds(descriptor, predicate)]
        return candidates

    def _test_holds(self, descriptor: NodeDescriptor,
                    predicate) -> bool:
        engine = self._engine
        if isinstance(predicate, AttributePredicate):
            for attribute in engine.attributes(descriptor):
                if attribute.schema_node.name.local == predicate.name:
                    return (predicate.value is None
                            or attribute.value == predicate.value)
            return False
        if isinstance(predicate, ChildPredicate):
            for child in engine.children(descriptor):
                name = child.schema_node.name
                if name is not None and name.local == predicate.name:
                    if (predicate.value is None
                            or engine.string_value(child)
                            == predicate.value):
                        return True
            return False
        raise TypeError(f"unknown predicate {predicate!r}")

    def _step_candidates(self, descriptor: NodeDescriptor,
                         step: Step) -> Iterator[NodeDescriptor]:
        engine = self._engine
        if step.axis == "child":
            if step.kind == "attribute":
                yield from engine.attributes(descriptor)
            else:
                yield from engine.children(descriptor)
        else:
            yield from engine.iter_document_order(descriptor)

    @staticmethod
    def _step_accepts(descriptor: NodeDescriptor, step: Step) -> bool:
        node_type = descriptor.node_type
        if step.kind == "text":
            return node_type == "text"
        if step.kind == "attribute":
            return (node_type == "attribute"
                    and step.matches_name(descriptor.schema_node.name.local))
        if node_type != "element":
            return False
        return step.matches_name(descriptor.schema_node.name.local)

    # -- Sedna's way: match the descriptive schema first -----------------

    def matching_schema_nodes(self, path: "Path | str") -> list[SchemaNode]:
        """Schema nodes whose root path matches *path*."""
        path = _as_path(path)
        return match_schema_nodes(self._engine.schema.root, path.steps)

    def evaluate_schema_driven(self, path: "Path | str"
                               ) -> list[NodeDescriptor]:
        """Jump straight to the blocks of the matching schema nodes.

        Because every document path has exactly one schema path (the
        defining property of Section 9.1), scanning the block lists of
        the matching schema nodes yields exactly the query result — no
        per-node navigation.  Results across several schema nodes are
        merged by label to restore global document order.

        Compilation happens afresh on every call (the planner decides
        scan vs. hybrid vs. naive, including structural predicate
        pruning); :meth:`evaluate` is the cached variant that skips
        recompilation while the schema version is unchanged.
        """
        path = _as_path_uncached(path)
        return compile_plan(path, self._engine.schema).execute(self)

    def _apply_final_predicates(self, descriptors: list[NodeDescriptor],
                                predicates) -> list[NodeDescriptor]:
        """Final-step predicates over a schema-driven scan.

        Positional predicates are per parent context (as in XPath), so
        the flat scan is grouped by parent first; value predicates
        filter descriptors directly.
        """
        for predicate in predicates:
            if isinstance(predicate, PositionPredicate):
                # Grouped by the parent's stable label, not id().
                groups: dict[tuple[int, ...] | None,
                             list[NodeDescriptor]] = {}
                order: list[tuple[int, ...] | None] = []
                for descriptor in descriptors:
                    parent = descriptor.parent
                    key = parent.nid.symbols() if parent is not None \
                        else None
                    if key not in groups:
                        groups[key] = []
                        order.append(key)
                    groups[key].append(descriptor)
                kept: list[NodeDescriptor] = []
                for key in order:
                    group = groups[key]
                    if predicate.index is None:
                        kept.append(group[-1])
                    elif predicate.index <= len(group):
                        kept.append(group[predicate.index - 1])
                descriptors = kept
            else:
                descriptors = [descriptor for descriptor in descriptors
                               if self._test_holds(descriptor, predicate)]
        return descriptors
