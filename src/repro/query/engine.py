"""Path evaluation over both representations of a document.

The navigational semantics is written **once**, against the
:class:`~repro.xdm.store.NodeStore` accessor protocol
(:func:`evaluate_store`); the representations differ only in which
store interprets the node references:

* :func:`evaluate_tree` — the formal node model, via
  :class:`~repro.xdm.store.TreeNodeStore` (the semantics reference);
* :meth:`StorageQueryEngine.evaluate_naive` — the Sedna storage, via
  :class:`~repro.storage.store.StorageNodeStore` (descriptor-chasing
  baseline);
* :meth:`StorageQueryEngine.evaluate_schema_driven` — Sedna's trick:
  match the path against the *descriptive schema* first, then scan the
  blocks of only the matching schema nodes, in document order, with no
  per-document-node navigation at all.

The three agreeing node-for-node is an integration test of the whole
Section 9 layer against the Section 5/6 model; the speed difference is
the XP benchmark.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro import obs
from repro.obs import explain as _explain
from repro.xdm.node import Node
from repro.xdm.store import TREE_STORE, NodeStore, Ref
from repro.storage.dschema import SchemaNode
from repro.storage.engine import NodeDescriptor, StorageEngine
from repro.storage.store import StorageNodeStore
from repro.query.cache import (
    PLAN_CACHE_CAPACITY,
    cached_parse_path,
    parse_cache_stats,
)
from repro.query.planner import (
    CompiledPlan,
    QueryPlanner,
    compile_plan,
    match_schema_nodes,
)
from repro.query.paths import (
    AttributePredicate,
    ChildPredicate,
    Path,
    PositionPredicate,
    Step,
    parse_path,
)


def _as_path(path: "Path | str") -> Path:
    return cached_parse_path(path) if isinstance(path, str) else path


def _as_path_uncached(path: "Path | str") -> Path:
    """Parse afresh — for the baseline evaluators, which model the
    engine *without* the caching layer and must not borrow its parse
    cache (the XP benchmark compares them against :meth:`evaluate`)."""
    return parse_path(path) if isinstance(path, str) else path


# ----------------------------------------------------------------------
# The one navigational semantics, over any NodeStore


def evaluate_store(store: NodeStore, path: "Path | str",
                   root: Ref = None) -> list[Ref]:
    """Evaluate *path* over *store*, starting at *root* (default: the
    store's document reference).

    Predicates are applied per context node, so ``book[2]`` means "the
    second book child of each parent", as in XPath.
    """
    path = _as_path(path)
    if root is None:
        root = store.root()
    return navigate_steps(store, [root], path.steps)


def navigate_steps(store: NodeStore, current: list[Ref],
                   steps: "tuple[Step, ...]") -> list[Ref]:
    """Per-step navigation from the *current* context references,
    deduplicated on the store's stable node keys.

    EXPLAIN accounting rides on :data:`repro.obs.explain.ACTIVE` — one
    ``is None`` test per context node when no explain is collecting,
    so the kernel stays within the no-op overhead budget.
    """
    context = _explain.ACTIVE
    for step in steps:
        if context is not None:
            context.axis_steps += 1
        bucket: list[Ref] = []
        seen: set = set()
        for ref in current:
            matched = [candidate
                       for candidate in _step_candidates(store, ref, step)
                       if _step_accepts(store, candidate, step)]
            if context is not None:
                context.nodes_visited += len(matched)
            for candidate in apply_step_predicates(store, matched,
                                                   step.predicates):
                key = store.node_key(candidate)
                if key not in seen:
                    seen.add(key)
                    bucket.append(candidate)
        current = bucket
    return current


def apply_step_predicates(store: NodeStore, candidates: list[Ref],
                          predicates) -> list[Ref]:
    for predicate in predicates:
        if isinstance(predicate, PositionPredicate):
            if predicate.index is None:
                candidates = candidates[-1:]
            elif predicate.index <= len(candidates):
                candidates = [candidates[predicate.index - 1]]
            else:
                candidates = []
        else:
            candidates = [ref for ref in candidates
                          if predicate_holds(store, ref, predicate)]
    return candidates


def predicate_holds(store: NodeStore, ref: Ref, predicate) -> bool:
    if isinstance(predicate, AttributePredicate):
        for attribute in store.attributes(ref):
            if store.local_name(attribute) == predicate.name:
                return (predicate.value is None
                        or store.string_value(attribute)
                        == predicate.value)
        return False
    if isinstance(predicate, ChildPredicate):
        for child in store.children(ref):
            if store.local_name(child) == predicate.name:
                if (predicate.value is None
                        or store.string_value(child) == predicate.value):
                    return True
        return False
    raise TypeError(f"unknown predicate {predicate!r}")


def _step_candidates(store: NodeStore, ref: Ref,
                     step: Step) -> Iterator[Ref]:
    if step.axis == "child":
        if step.kind == "attribute":
            yield from store.attributes(ref)
        else:
            yield from store.children(ref)
    else:  # descendant-or-self
        yield from store.descendants_of(ref)


def _step_accepts(store: NodeStore, ref: Ref, step: Step) -> bool:
    kind = store.node_kind(ref)
    if step.kind == "text":
        return kind == "text"
    if step.kind == "attribute":
        return (kind == "attribute"
                and step.matches_name(store.local_name(ref)))
    if kind != "element":
        return False
    return step.matches_name(store.local_name(ref))


# ----------------------------------------------------------------------
# Evaluation over the formal node model


def evaluate_tree(root: Node, path: "Path | str") -> list[Node]:
    """Evaluate *path* against a tree; *root* is the document node (or
    the element standing in for it)."""
    return evaluate_store(TREE_STORE, path, root)


# ----------------------------------------------------------------------
# Evaluation over the storage engine


class StorageQueryEngine:
    """Path queries over a loaded :class:`StorageEngine`.

    Beyond the two evaluators, the engine owns a
    :class:`~repro.query.planner.QueryPlanner` whose plan cache makes
    repeated queries skip parsing and schema matching entirely:
    :meth:`evaluate` is the cached entry point, and :meth:`cache_stats`
    surfaces hit/miss/invalidation counters next to the storage
    engine's split/insert instrumentation.
    """

    def __init__(self, engine: StorageEngine,
                 plan_cache_capacity: int = PLAN_CACHE_CAPACITY,
                 planner_policy: str = "cost") -> None:
        self._engine = engine
        self._store = StorageNodeStore(engine)
        #: *planner_policy* selects how strategies are chosen (see
        #: :data:`repro.query.planner.POLICIES`): ``cost`` (default)
        #: prices candidates from the engine statistics; the forced
        #: policies exist for benchmarks and parity testing.
        self._planner = QueryPlanner(engine, plan_cache_capacity,
                                     policy=planner_policy)
        # Inherent instruments (see repro.obs.metrics): held directly
        # so the always-on telemetry path skips the registry lookups.
        # obs.reset() zeroes instruments in place, so these stay live.
        self._evaluations = obs.REGISTRY.counter("query.evaluations")
        self._latency = obs.REGISTRY.histogram("query.latency.ns")

    @property
    def engine(self) -> StorageEngine:
        return self._engine

    @property
    def store(self) -> StorageNodeStore:
        """The accessor-protocol view of the underlying engine."""
        return self._store

    # -- compiled-plan entry points -------------------------------------

    def compile(self, path: "Path | str") -> CompiledPlan:
        """The cached compiled plan for *path* (compiling on miss)."""
        return self._planner.compile(path)

    def evaluate(self, path: "Path | str") -> list[NodeDescriptor]:
        """Evaluate through the plan cache — the hot entry point.

        With diagnostics enabled (or the slow-query log armed), every
        call records a :class:`~repro.obs.explain.QueryExplain` (plan
        strategy, cache hit/miss, axis steps, nodes visited vs.
        returned); diagnostics also append it to
        :data:`repro.obs.EXPLAINS`.  With only telemetry on, the call
        is timed into the ``query.latency.ns`` histogram and counted —
        nothing per-query is allocated.
        """
        if obs.ENABLED or obs.SLOW_QUERY_NS is not None:
            return self._evaluate_explained(path)
        if obs.TELEMETRY:
            started = time.perf_counter_ns()
            result = self._planner.compile(path).execute_compiled(self)
            self._evaluations.inc()
            self._latency.observe(time.perf_counter_ns() - started)
            return result
        return self._planner.compile(path).execute_compiled(self)

    def _evaluate_explained(self, path: "Path | str"
                            ) -> list[NodeDescriptor]:
        with _explain.collect(str(path)) as record:
            start = time.perf_counter()
            result = self._planner.compile(path).execute_compiled(self)
            record.elapsed_s = time.perf_counter() - start
            record.nodes_returned = len(result)
        elapsed_ns = int(record.elapsed_s * 1e9)
        registry = obs.REGISTRY
        if obs.RECORDING:
            registry.counter("query.evaluations").inc()
            registry.histogram("query.latency.ns").observe(elapsed_ns)
        if obs.ENABLED:
            obs.EXPLAINS.append(record)
            if record.compiled:
                registry.counter("query.exec.compiled.hits").inc()
            registry.counter("query.axis_steps").inc(record.axis_steps)
            registry.counter("query.nodes_visited").inc(
                record.nodes_visited)
            registry.counter("query.nodes_returned").inc(
                record.nodes_returned)
        threshold = obs.SLOW_QUERY_NS
        if threshold is not None and elapsed_ns >= threshold:
            # The complete EXPLAIN rides in the event record — the
            # slow-query log needs no second evaluation to diagnose.
            # The event fires whenever the threshold is armed (arming
            # is its own opt-in, independent of the telemetry tier);
            # the counter is telemetry and honors RECORDING like
            # every other counter site.
            if obs.RECORDING:
                registry.counter("query.slow").inc()
            obs.EVENTS.emit("query.slow", severity="warn",
                            **record.as_dict())
        return result

    def cache_stats(self) -> dict[str, float]:
        """Plan- and parse-cache counters for the benchmark harness."""
        plan = self._planner.stats()
        parse = parse_cache_stats()
        return {
            "plan_hits": plan.hits,
            "plan_misses": plan.misses,
            "plan_invalidations": plan.invalidations,
            "plan_evictions": plan.evictions,
            "plan_size": plan.size,
            "plan_hit_rate": plan.hit_rate,
            "parse_hits": parse.hits,
            "parse_misses": parse.misses,
            "parse_hit_rate": parse.hit_rate,
        }

    def clear_caches(self) -> None:
        """Drop the plan cache and zero its counters."""
        self._planner.clear()

    # -- baseline: navigate descriptors --------------------------------

    def evaluate_naive(self, path: "Path | str") -> list[NodeDescriptor]:
        path = _as_path_uncached(path)
        if self._engine.document is None:
            return []
        return evaluate_store(self._store, path)

    def _navigate_steps(self, current: list[NodeDescriptor],
                        steps: "tuple[Step, ...]"
                        ) -> list[NodeDescriptor]:
        """Per-step navigation from *current* context descriptors —
        the shared protocol navigation, deduplicated on the stable
        label symbols (unique per document, Section 9.3)."""
        return navigate_steps(self._store, current, steps)

    def _test_holds(self, descriptor: NodeDescriptor,
                    predicate) -> bool:
        return predicate_holds(self._store, descriptor, predicate)

    # -- Sedna's way: match the descriptive schema first -----------------

    def matching_schema_nodes(self, path: "Path | str") -> list[SchemaNode]:
        """Schema nodes whose root path matches *path*."""
        path = _as_path(path)
        return match_schema_nodes(self._engine.schema.root, path.steps)

    def evaluate_schema_driven(self, path: "Path | str"
                               ) -> list[NodeDescriptor]:
        """Jump straight to the blocks of the matching schema nodes.

        Because every document path has exactly one schema path (the
        defining property of Section 9.1), scanning the block lists of
        the matching schema nodes yields exactly the query result — no
        per-node navigation.  Results across several schema nodes are
        merged by label to restore global document order.

        Compilation happens afresh on every call (the planner decides
        scan vs. hybrid vs. naive, including structural predicate
        pruning); :meth:`evaluate` is the cached variant that skips
        recompilation while the schema version is unchanged.
        """
        path = _as_path_uncached(path)
        return compile_plan(path, self._engine.schema).execute(self)

    def _apply_final_predicates(self, descriptors: list[NodeDescriptor],
                                predicates) -> list[NodeDescriptor]:
        """Final-step predicates over a schema-driven scan.

        Positional predicates are per parent context (as in XPath), so
        the flat scan is grouped by parent first; value predicates
        filter descriptors directly.
        """
        for predicate in predicates:
            if isinstance(predicate, PositionPredicate):
                # Grouped by the parent's stable packed label, not id().
                groups: dict[bytes | None,
                             list[NodeDescriptor]] = {}
                order: list[bytes | None] = []
                for descriptor in descriptors:
                    parent = descriptor.parent
                    key = parent.nid.sort_key() if parent is not None \
                        else None
                    if key not in groups:
                        groups[key] = []
                        order.append(key)
                    groups[key].append(descriptor)
                kept: list[NodeDescriptor] = []
                for key in order:
                    group = groups[key]
                    if predicate.index is None:
                        kept.append(group[-1])
                    elif predicate.index <= len(group):
                        kept.append(group[predicate.index - 1])
                descriptors = kept
            else:
                descriptors = [descriptor for descriptor in descriptors
                               if self._test_holds(descriptor, predicate)]
        return descriptors
